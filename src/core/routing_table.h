// µproxy routing table (paper §3): a compact array mapping logical server
// IDs to physical servers. Keys hash into the logical space; multiple
// logical IDs map to one physical server, leaving slack for reconfiguration
// ("the number of logical servers defines ... the minimal granularity for
// rebalancing"). The table is soft state — an external authority replaces it
// wholesale; the µproxy never mutates it in place.
//
// Tables carry a monotonically increasing epoch stamped by the ensemble
// manager (src/mgmt): a µproxy holding epoch E learns it is stale when a
// server's misdirect notice or a pushed table carries an epoch > E.
#ifndef SLICE_CORE_ROUTING_TABLE_H_
#define SLICE_CORE_ROUTING_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/net/packet.h"

namespace slice {

// --- Rendezvous (highest-random-weight) hashing -----------------------------
//
// HRW scores every (key, node) pair independently and routes the key to the
// highest-scoring node. Because scores do not depend on the member list —
// only on the node's own identity — removing a node moves exactly the keys
// that node owned, and adding one moves only the keys the newcomer wins:
// the minimal-movement property the modular `key % n` choice lacks (there a
// membership change reshuffles nearly every key).

// Deterministic weight of `node` for `key`. Pure function of the pair; no
// dependence on membership, ordering, or history.
inline uint64_t RendezvousWeight(uint64_t key, uint32_t node) {
  return MixU64(key ^ MixU64(0x9e3779b97f4a7c15ull + node));
}

// Node index in [0, n) with the rank-th highest weight for `key` (rank 0 =
// winner, rank 1 = runner-up for the first mirror copy, ...). Ties break
// toward the lower node index so the pick is a strict total order. O(n·rank)
// selection — n is a handful of physical servers, rank a replica count.
inline uint32_t RendezvousPick(uint64_t key, size_t n, uint32_t rank = 0) {
  SLICE_CHECK(n > 0 && rank < n && n <= 64);
  uint64_t taken = 0;  // bitmask of nodes chosen for lower ranks
  for (uint32_t r = 0;; ++r) {
    bool found = false;
    uint64_t best_w = 0;
    uint32_t best_n = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if ((taken >> i) & 1) {
        continue;
      }
      const uint64_t w = RendezvousWeight(key, i);
      if (!found || w > best_w || (w == best_w && i < best_n)) {
        found = true;
        best_w = w;
        best_n = i;
      }
    }
    SLICE_CHECK(found);
    if (r == rank) {
      return best_n;
    }
    taken |= uint64_t{1} << best_n;
  }
}

// Winner among live nodes only: argmax of RendezvousWeight over indices with
// alive[i] != 0. `alive` empty means everyone is alive. Returns true and sets
// *out when at least one node is live.
inline bool RendezvousPickAlive(uint64_t key, size_t n,
                                const std::vector<uint8_t>& alive,
                                uint32_t* out) {
  SLICE_CHECK(n > 0);
  bool found = false;
  uint64_t best_w = 0;
  uint32_t best_n = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (!alive.empty() && (i >= alive.size() || !alive[i])) {
      continue;
    }
    const uint64_t w = RendezvousWeight(key, i);
    if (!found || w > best_w || (w == best_w && i < best_n)) {
      found = true;
      best_w = w;
      best_n = i;
    }
  }
  if (found && out != nullptr) {
    *out = best_n;
  }
  return found;
}

// Slot table driven by HRW: slot s binds to the live node with the highest
// weight for key MixU64(s). Dead nodes simply drop out of the argmax, so a
// death rebinds exactly the dead node's slots and a rejoin restores exactly
// the slots it wins back — no other slot moves.
inline std::vector<uint32_t> RendezvousAssignment(
    size_t logical_slots, size_t n, const std::vector<uint8_t>& alive = {}) {
  SLICE_CHECK(logical_slots > 0 && n > 0);
  std::vector<uint32_t> slots(logical_slots);
  for (size_t s = 0; s < logical_slots; ++s) {
    uint32_t owner = 0;
    if (!RendezvousPickAlive(MixU64(static_cast<uint64_t>(s)), n, alive,
                             &owner)) {
      owner = static_cast<uint32_t>(s % n);  // all dead: placeholder binding
    }
    slots[s] = owner;
  }
  return slots;
}

// HRW storage striping: the key folds the file identity (a precomputed hash
// of the file handle bytes) with the stripe block so consecutive blocks
// spread across nodes; `replica` asks for the rank-th mirror target.
inline uint32_t RendezvousStripeSite(uint64_t fh_key, uint64_t offset,
                                     uint32_t stripe_unit, size_t num_nodes,
                                     uint32_t replica = 0) {
  SLICE_CHECK(stripe_unit > 0 && num_nodes > 0);
  const uint64_t block = offset / stripe_unit;
  return RendezvousPick(fh_key ^ MixU64(block + 1), num_nodes,
                        replica % static_cast<uint32_t>(num_nodes));
}

class RoutingTable {
 public:
  RoutingTable() = default;

  // Builds a table with `logical_slots` slots filled round-robin over
  // `servers`.
  RoutingTable(size_t logical_slots, std::vector<Endpoint> servers)
      : servers_(std::move(servers)), slots_(logical_slots) {
    SLICE_CHECK(!servers_.empty());
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = static_cast<uint32_t>(i % servers_.size());
    }
  }

  bool empty() const { return servers_.empty(); }
  size_t logical_slots() const { return slots_.size(); }
  size_t physical_count() const { return servers_.size(); }

  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  // Logical slot for a routing key.
  uint32_t SlotFor(uint64_t key) const {
    SLICE_CHECK(!slots_.empty());
    return static_cast<uint32_t>(key % slots_.size());
  }

  Endpoint Lookup(uint64_t key) const {
    SLICE_CHECK(!servers_.empty());
    return servers_[slots_[SlotFor(key)]];
  }
  Endpoint ByPhysical(size_t index) const {
    SLICE_CHECK(!servers_.empty());
    return servers_[index % servers_.size()];
  }
  // Server currently bound to a logical slot.
  Endpoint BySlot(uint32_t slot) const {
    SLICE_CHECK(slot < slots_.size() && !servers_.empty());
    return servers_[slots_[slot]];
  }
  uint32_t PhysicalIndexFor(uint64_t key) const { return slots_[SlotFor(key)]; }
  uint32_t PhysicalIndexOfSlot(uint32_t slot) const {
    SLICE_CHECK(slot < slots_.size());
    return slots_[slot];
  }

  // Reconfiguration: rebind one logical slot to another physical server.
  void Rebind(uint32_t slot, uint32_t physical_index) {
    SLICE_CHECK(slot < slots_.size() && physical_index < servers_.size());
    slots_[slot] = physical_index;
  }

  // Reconfiguration: install a new server list, remapping slots round-robin.
  void Reload(std::vector<Endpoint> servers) {
    SLICE_CHECK(!servers.empty());
    servers_ = std::move(servers);
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = static_cast<uint32_t>(i % servers_.size());
    }
  }

  // Reconfiguration: wholesale install of a manager-computed assignment.
  void InstallAssignment(uint64_t epoch, std::vector<Endpoint> servers,
                         std::vector<uint32_t> slots) {
    SLICE_CHECK(!servers.empty() && !slots.empty());
    for (uint32_t s : slots) {
      SLICE_CHECK(s < servers.size());
    }
    epoch_ = epoch;
    servers_ = std::move(servers);
    slots_ = std::move(slots);
  }

  const std::vector<Endpoint>& servers() const { return servers_; }
  const std::vector<uint32_t>& slots() const { return slots_; }

 private:
  std::vector<Endpoint> servers_;
  std::vector<uint32_t> slots_;
  uint64_t epoch_ = 0;
};

}  // namespace slice

#endif  // SLICE_CORE_ROUTING_TABLE_H_
