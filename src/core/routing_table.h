// µproxy routing table (paper §3): a compact array mapping logical server
// IDs to physical servers. Keys hash into the logical space; multiple
// logical IDs map to one physical server, leaving slack for reconfiguration
// ("the number of logical servers defines ... the minimal granularity for
// rebalancing"). The table is soft state — an external authority replaces it
// wholesale; the µproxy never mutates it in place.
//
// Tables carry a monotonically increasing epoch stamped by the ensemble
// manager (src/mgmt): a µproxy holding epoch E learns it is stale when a
// server's misdirect notice or a pushed table carries an epoch > E.
#ifndef SLICE_CORE_ROUTING_TABLE_H_
#define SLICE_CORE_ROUTING_TABLE_H_

#include <vector>

#include "src/common/status.h"
#include "src/net/packet.h"

namespace slice {

class RoutingTable {
 public:
  RoutingTable() = default;

  // Builds a table with `logical_slots` slots filled round-robin over
  // `servers`.
  RoutingTable(size_t logical_slots, std::vector<Endpoint> servers)
      : servers_(std::move(servers)), slots_(logical_slots) {
    SLICE_CHECK(!servers_.empty());
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = static_cast<uint32_t>(i % servers_.size());
    }
  }

  bool empty() const { return servers_.empty(); }
  size_t logical_slots() const { return slots_.size(); }
  size_t physical_count() const { return servers_.size(); }

  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  // Logical slot for a routing key.
  uint32_t SlotFor(uint64_t key) const {
    SLICE_CHECK(!slots_.empty());
    return static_cast<uint32_t>(key % slots_.size());
  }

  Endpoint Lookup(uint64_t key) const {
    SLICE_CHECK(!servers_.empty());
    return servers_[slots_[SlotFor(key)]];
  }
  Endpoint ByPhysical(size_t index) const {
    SLICE_CHECK(!servers_.empty());
    return servers_[index % servers_.size()];
  }
  // Server currently bound to a logical slot.
  Endpoint BySlot(uint32_t slot) const {
    SLICE_CHECK(slot < slots_.size() && !servers_.empty());
    return servers_[slots_[slot]];
  }
  uint32_t PhysicalIndexFor(uint64_t key) const { return slots_[SlotFor(key)]; }
  uint32_t PhysicalIndexOfSlot(uint32_t slot) const {
    SLICE_CHECK(slot < slots_.size());
    return slots_[slot];
  }

  // Reconfiguration: rebind one logical slot to another physical server.
  void Rebind(uint32_t slot, uint32_t physical_index) {
    SLICE_CHECK(slot < slots_.size() && physical_index < servers_.size());
    slots_[slot] = physical_index;
  }

  // Reconfiguration: install a new server list, remapping slots round-robin.
  void Reload(std::vector<Endpoint> servers) {
    SLICE_CHECK(!servers.empty());
    servers_ = std::move(servers);
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = static_cast<uint32_t>(i % servers_.size());
    }
  }

  // Reconfiguration: wholesale install of a manager-computed assignment.
  void InstallAssignment(uint64_t epoch, std::vector<Endpoint> servers,
                         std::vector<uint32_t> slots) {
    SLICE_CHECK(!servers.empty() && !slots.empty());
    for (uint32_t s : slots) {
      SLICE_CHECK(s < servers.size());
    }
    epoch_ = epoch;
    servers_ = std::move(servers);
    slots_ = std::move(slots);
  }

  const std::vector<Endpoint>& servers() const { return servers_; }
  const std::vector<uint32_t>& slots() const { return slots_; }

 private:
  std::vector<Endpoint> servers_;
  std::vector<uint32_t> slots_;
  uint64_t epoch_ = 0;
};

}  // namespace slice

#endif  // SLICE_CORE_ROUTING_TABLE_H_
