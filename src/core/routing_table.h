// µproxy routing table (paper §3): a compact array mapping logical server
// IDs to physical servers. Keys hash into the logical space; multiple
// logical IDs map to one physical server, leaving slack for reconfiguration
// ("the number of logical servers defines ... the minimal granularity for
// rebalancing"). The table is soft state — an external authority replaces it
// wholesale; the µproxy never mutates it in place.
#ifndef SLICE_CORE_ROUTING_TABLE_H_
#define SLICE_CORE_ROUTING_TABLE_H_

#include <vector>

#include "src/common/status.h"
#include "src/net/packet.h"

namespace slice {

class RoutingTable {
 public:
  RoutingTable() = default;

  // Builds a table with `logical_slots` slots filled round-robin over
  // `servers`.
  RoutingTable(size_t logical_slots, std::vector<Endpoint> servers)
      : servers_(std::move(servers)), slots_(logical_slots) {
    SLICE_CHECK(!servers_.empty());
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = static_cast<uint32_t>(i % servers_.size());
    }
  }

  bool empty() const { return servers_.empty(); }
  size_t logical_slots() const { return slots_.size(); }
  size_t physical_count() const { return servers_.size(); }

  // Logical slot for a routing key.
  uint32_t SlotFor(uint64_t key) const { return static_cast<uint32_t>(key % slots_.size()); }

  Endpoint Lookup(uint64_t key) const { return servers_[slots_[SlotFor(key)]]; }
  Endpoint ByPhysical(size_t index) const { return servers_[index % servers_.size()]; }
  uint32_t PhysicalIndexFor(uint64_t key) const { return slots_[SlotFor(key)]; }

  // Reconfiguration: rebind one logical slot to another physical server.
  void Rebind(uint32_t slot, uint32_t physical_index) {
    SLICE_CHECK(slot < slots_.size() && physical_index < servers_.size());
    slots_[slot] = physical_index;
  }

  // Reconfiguration: install a new server list, remapping slots round-robin.
  void Reload(std::vector<Endpoint> servers) {
    SLICE_CHECK(!servers.empty());
    servers_ = std::move(servers);
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i] = static_cast<uint32_t>(i % servers_.size());
    }
  }

  const std::vector<Endpoint>& servers() const { return servers_; }

 private:
  std::vector<Endpoint> servers_;
  std::vector<uint32_t> slots_;
};

}  // namespace slice

#endif  // SLICE_CORE_ROUTING_TABLE_H_
