// µproxy attribute cache (paper §4.1): directory servers hold the
// authoritative attributes, but I/O flows past them straight to storage and
// small-file servers. The µproxy keeps attributes current by updating its
// cache as each operation completes, patching a complete, fresh attribute
// set into every reply, and pushing modified attributes back to the
// directory server with setattr on eviction, commit, or a periodic timer.
#ifndef SLICE_CORE_ATTR_CACHE_H_
#define SLICE_CORE_ATTR_CACHE_H_

#include <list>
#include <unordered_map>
#include <vector>

#include "src/nfs/nfs_types.h"
#include "src/sim/event_queue.h"

namespace slice {

class AttrCache {
 public:
  explicit AttrCache(size_t capacity) : capacity_(capacity) {}

  struct Entry {
    Fattr3 attr;
    bool dirty = false;  // size/mtime modified locally, not yet written back
  };

  // Merges attributes seen in a server reply. Locally cached size/times win
  // when the entry is dirty (the µproxy has seen I/O the server has not).
  void MergeFromReply(uint64_t fileid, const Fattr3& attr);

  // Applies the attribute side effects of an I/O operation.
  void NoteRead(uint64_t fileid, NfsTime now);
  void NoteWrite(uint64_t fileid, uint64_t end_offset, NfsTime now);

  // Current view, if cached.
  const Entry* Find(uint64_t fileid) const;

  // Marks an entry clean (after a successful writeback).
  void MarkClean(uint64_t fileid);
  void Erase(uint64_t fileid);
  void Clear();

  // Dirty fileids needing writeback. `all` = periodic flush; otherwise only
  // entries at least `min_age` stale would be returned by the caller's
  // policy (we simply return all dirty entries — the caller owns cadence).
  std::vector<uint64_t> DirtyFiles() const;

  size_t size() const { return entries_.size(); }
  uint64_t evictions() const { return evictions_; }
  // Dirty entries that were evicted by capacity pressure since the last
  // call; their attributes must still be written back.
  std::vector<std::pair<uint64_t, Fattr3>> TakeEvictedDirty();

 private:
  Entry& GetOrInsert(uint64_t fileid);
  void TouchLru(uint64_t fileid);

  size_t capacity_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_index_;
  std::vector<std::pair<uint64_t, Fattr3>> evicted_dirty_;
  uint64_t evictions_ = 0;
};

}  // namespace slice

#endif  // SLICE_CORE_ATTR_CACHE_H_
