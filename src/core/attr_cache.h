// µproxy attribute cache (paper §4.1): directory servers hold the
// authoritative attributes, but I/O flows past them straight to storage and
// small-file servers. The µproxy keeps attributes current by updating its
// cache as each operation completes, patching a complete, fresh attribute
// set into every reply, and pushing modified attributes back to the
// directory server with setattr on eviction, commit, or a periodic timer.
#ifndef SLICE_CORE_ATTR_CACHE_H_
#define SLICE_CORE_ATTR_CACHE_H_

#include <list>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/nfs/nfs_types.h"
#include "src/sim/event_queue.h"

namespace slice {

class AttrCache {
 public:
  explicit AttrCache(size_t capacity) : capacity_(capacity) {}

  struct Entry {
    Fattr3 attr;
    bool dirty = false;  // size/mtime modified locally, not yet written back
    // True once a full attribute set from a server reply has been merged.
    // NoteWrite-only entries are partial (size/times only) and must not be
    // served as a complete getattr answer.
    bool complete = false;
  };

  // Merges attributes seen in a server reply. Locally cached size/times win
  // when the entry is dirty (the µproxy has seen I/O the server has not).
  void MergeFromReply(uint64_t fileid, const Fattr3& attr);

  // Applies the attribute side effects of an I/O operation.
  void NoteRead(uint64_t fileid, NfsTime now);
  void NoteWrite(uint64_t fileid, uint64_t end_offset, NfsTime now);

  // Current view, if cached.
  const Entry* Find(uint64_t fileid) const;

  // Marks an entry clean (after a successful writeback).
  void MarkClean(uint64_t fileid);
  void Erase(uint64_t fileid);
  void Clear();

  // Dirty fileids needing writeback. `all` = periodic flush; otherwise only
  // entries at least `min_age` stale would be returned by the caller's
  // policy (we simply return all dirty entries — the caller owns cadence).
  std::vector<uint64_t> DirtyFiles() const;

  // Epoch invalidation: drops every *clean* entry matching `pred(fileid)`
  // and returns how many were dropped. Dirty entries survive — the µproxy is
  // authoritative for them until writeback, and writeback re-resolves the
  // directory server from the current table at send time.
  template <typename Pred>
  size_t FlushWhere(Pred pred) {
    size_t flushed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (!it->second.dirty && pred(it->first)) {
        auto lru_it = lru_index_.find(it->first);
        if (lru_it != lru_index_.end()) {
          lru_.erase(lru_it->second);
          lru_index_.erase(lru_it);
        }
        it = entries_.erase(it);
        ++flushed;
      } else {
        ++it;
      }
    }
    return flushed;
  }

  size_t size() const { return entries_.size(); }
  uint64_t evictions() const { return evictions_; }
  // Dirty entries that were evicted by capacity pressure since the last
  // call; their attributes must still be written back.
  std::vector<std::pair<uint64_t, Fattr3>> TakeEvictedDirty();

 private:
  Entry& GetOrInsert(uint64_t fileid);
  void TouchLru(uint64_t fileid);

  size_t capacity_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_index_;
  std::vector<std::pair<uint64_t, Fattr3>> evicted_dirty_;
  uint64_t evictions_ = 0;
};

// In-proxy directory-lookup cache (Fletch-style: metadata resolution at the
// interposition point). Keyed by (directory fileid, name fingerprint); an
// entry memoizes the LOOKUP result — child handle + attributes — plus the
// logical name slot it was resolved under, so an epoch bump that rebinds a
// slot can flush exactly the entries resolved through the stale binding.
// Bounded, LRU-evicted, optional TTL. The probe path (Find) performs no
// allocation: a hash lookup plus a list splice.
class LookupCache {
 public:
  explicit LookupCache(size_t capacity) : capacity_(capacity) {}

  struct Entry {
    uint64_t dir_id = 0;  // verified on hit: the map key is a folded hash
    uint64_t name_fp = 0;
    FileHandle fh;
    Fattr3 attr;
    uint32_t slot = 0;       // logical name slot at fill time
    uint64_t filled_at = 0;  // sim-time ns, for the optional TTL
  };

  // nullptr on miss, mismatch (key-fold collision), or TTL expiry
  // (ttl_ns == 0 disables expiry). Touches LRU on hit.
  const Entry* Find(uint64_t dir_id, uint64_t name_fp, uint64_t now_ns,
                    uint64_t ttl_ns);

  void Insert(uint64_t dir_id, uint64_t name_fp, const FileHandle& fh,
              const Fattr3& attr, uint32_t slot, uint64_t now_ns);

  void Erase(uint64_t dir_id, uint64_t name_fp);

  // Epoch invalidation: drops entries whose fill-time slot is marked in
  // `changed` (indexed by slot). Returns the number dropped.
  size_t InvalidateSlots(const std::vector<uint8_t>& changed);

  void Clear();

  size_t size() const { return entries_.size(); }
  uint64_t evictions() const { return evictions_; }

  static uint64_t KeyOf(uint64_t dir_id, uint64_t name_fp) {
    return MixU64(dir_id ^ MixU64(name_fp));
  }

 private:
  void TouchLru(uint64_t key);
  void EraseKey(uint64_t key);

  size_t capacity_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_index_;
  uint64_t evictions_ = 0;
};

}  // namespace slice

#endif  // SLICE_CORE_ATTR_CACHE_H_
