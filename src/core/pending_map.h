// Open-addressing hash map from a trivially-copyable key to a
// trivially-copyable value.
//
// The µproxy's pending-request table sees one insert and one erase per
// forwarded request; std::unordered_map pays a node allocation for each.
// This map keeps everything in one flat slot array — linear probing on a
// power-of-two capacity, backward-shift (Knuth) deletion instead of
// tombstones — so once the array has grown to the working-set size,
// steady-state insert/find/erase never touch the heap. The same discipline
// now backs the server tier: the RPC duplicate-request cache index and the
// storage node's per-object tables (DESIGN.md, server-side pools).
#ifndef SLICE_CORE_PENDING_MAP_H_
#define SLICE_CORE_PENDING_MAP_H_

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"

namespace slice {

struct MixU64Hash {
  uint64_t operator()(uint64_t key) const { return MixU64(key); }
};

template <typename K, typename V, typename Hash = MixU64Hash>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K>,
                "backward-shift deletion relocates keys by assignment");
  static_assert(std::is_trivially_copyable_v<V>,
                "backward-shift deletion relocates values by assignment");

 public:
  explicit FlatMap(size_t initial_capacity = 64) {
    size_t cap = 16;
    while (cap < initial_capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  V* Find(const K& key) {
    size_t i = IndexFor(key);
    while (slots_[i].full) {
      if (slots_[i].key == key) {
        return &slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* Find(const K& key) const { return const_cast<FlatMap*>(this)->Find(key); }

  // Returns (value slot, inserted). A fresh slot holds a value-initialized V.
  // The pointer is valid until the next Insert (growth) or Erase (shift).
  std::pair<V*, bool> Insert(const K& key) {
    if ((size_ + 1) * 2 > slots_.size()) {
      Grow();
    }
    size_t i = IndexFor(key);
    while (slots_[i].full) {
      if (slots_[i].key == key) {
        return {&slots_[i].value, false};
      }
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = V{};
    slots_[i].full = true;
    ++size_;
    return {&slots_[i].value, true};
  }

  bool Erase(const K& key) {
    size_t i = IndexFor(key);
    while (true) {
      if (!slots_[i].full) {
        return false;
      }
      if (slots_[i].key == key) {
        break;
      }
      i = (i + 1) & mask_;
    }
    --size_;
    // Backward-shift deletion (Knuth 6.4 Algorithm R): pull each following
    // cluster member whose probe path crosses the hole back into it, so no
    // tombstones accumulate and probe lengths stay tight.
    size_t j = i;
    while (true) {
      slots_[i].full = false;
      while (true) {
        j = (j + 1) & mask_;
        if (!slots_[j].full) {
          return true;
        }
        const size_t home = IndexFor(slots_[j].key);
        // Slot j may stay iff its home lies cyclically within (i, j].
        const bool stays = i <= j ? (i < home && home <= j) : (i < home || home <= j);
        if (!stays) {
          break;
        }
      }
      slots_[i].key = slots_[j].key;
      slots_[i].value = slots_[j].value;
      slots_[i].full = true;
      i = j;
    }
  }

  void Clear() {
    for (Slot& s : slots_) {
      s.full = false;
    }
    size_ = 0;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.full) {
        fn(s.key, s.value);
      }
    }
  }

 private:
  struct Slot {
    K key{};
    V value{};
    bool full = false;
  };

  size_t IndexFor(const K& key) const {
    return static_cast<size_t>(Hash{}(key)) & mask_;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.full) {
        *Insert(s.key).first = s.value;
      }
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

// The original uint64-keyed shape (µproxy pending table, table3 bench).
template <typename V>
using FlatU64Map = FlatMap<uint64_t, V, MixU64Hash>;

}  // namespace slice

#endif  // SLICE_CORE_PENDING_MAP_H_
