#include "src/core/attr_cache.h"

#include <algorithm>

namespace slice {

AttrCache::Entry& AttrCache::GetOrInsert(uint64_t fileid) {
  auto it = entries_.find(fileid);
  if (it != entries_.end()) {
    TouchLru(fileid);
    return it->second;
  }
  if (entries_.size() >= capacity_ && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_index_.erase(victim);
    auto victim_it = entries_.find(victim);
    if (victim_it != entries_.end()) {
      if (victim_it->second.dirty) {
        evicted_dirty_.emplace_back(victim, victim_it->second.attr);
      }
      entries_.erase(victim_it);
    }
    ++evictions_;
  }
  lru_.push_front(fileid);
  lru_index_[fileid] = lru_.begin();
  return entries_[fileid];
}

void AttrCache::TouchLru(uint64_t fileid) {
  auto it = lru_index_.find(fileid);
  if (it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
}

void AttrCache::MergeFromReply(uint64_t fileid, const Fattr3& attr) {
  Entry& entry = GetOrInsert(fileid);
  if (entry.dirty) {
    // Keep our fresher I/O-derived size/times; adopt the rest.
    const uint64_t size = std::max(entry.attr.size, attr.size);
    const NfsTime mtime = entry.attr.mtime < attr.mtime ? attr.mtime : entry.attr.mtime;
    const NfsTime atime = entry.attr.atime < attr.atime ? attr.atime : entry.attr.atime;
    entry.attr = attr;
    entry.attr.size = size;
    entry.attr.mtime = mtime;
    entry.attr.atime = atime;
  } else {
    entry.attr = attr;
  }
}

void AttrCache::NoteRead(uint64_t fileid, NfsTime now) {
  auto it = entries_.find(fileid);
  if (it == entries_.end()) {
    return;  // nothing cached to update; the reply merge will seed it
  }
  TouchLru(fileid);
  it->second.attr.atime = now;
}

void AttrCache::NoteWrite(uint64_t fileid, uint64_t end_offset, NfsTime now) {
  Entry& entry = GetOrInsert(fileid);
  entry.attr.fileid = fileid;
  entry.attr.size = std::max(entry.attr.size, end_offset);
  entry.attr.mtime = now;
  entry.attr.ctime = now;
  entry.dirty = true;
}

const AttrCache::Entry* AttrCache::Find(uint64_t fileid) const {
  const auto it = entries_.find(fileid);
  return it == entries_.end() ? nullptr : &it->second;
}

void AttrCache::MarkClean(uint64_t fileid) {
  auto it = entries_.find(fileid);
  if (it != entries_.end()) {
    it->second.dirty = false;
  }
}

void AttrCache::Erase(uint64_t fileid) {
  auto it = lru_index_.find(fileid);
  if (it != lru_index_.end()) {
    lru_.erase(it->second);
    lru_index_.erase(it);
  }
  entries_.erase(fileid);
}

void AttrCache::Clear() {
  entries_.clear();
  lru_.clear();
  lru_index_.clear();
  evicted_dirty_.clear();
}

std::vector<uint64_t> AttrCache::DirtyFiles() const {
  std::vector<uint64_t> out;
  for (const auto& [fileid, entry] : entries_) {
    if (entry.dirty) {
      out.push_back(fileid);
    }
  }
  return out;
}

std::vector<std::pair<uint64_t, Fattr3>> AttrCache::TakeEvictedDirty() {
  return std::exchange(evicted_dirty_, {});
}

}  // namespace slice
