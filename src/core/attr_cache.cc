#include "src/core/attr_cache.h"

#include <algorithm>

namespace slice {

AttrCache::Entry& AttrCache::GetOrInsert(uint64_t fileid) {
  auto it = entries_.find(fileid);
  if (it != entries_.end()) {
    TouchLru(fileid);
    return it->second;
  }
  if (entries_.size() >= capacity_ && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_index_.erase(victim);
    auto victim_it = entries_.find(victim);
    if (victim_it != entries_.end()) {
      if (victim_it->second.dirty) {
        evicted_dirty_.emplace_back(victim, victim_it->second.attr);
      }
      entries_.erase(victim_it);
    }
    ++evictions_;
  }
  lru_.push_front(fileid);
  lru_index_[fileid] = lru_.begin();
  return entries_[fileid];
}

void AttrCache::TouchLru(uint64_t fileid) {
  auto it = lru_index_.find(fileid);
  if (it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
}

void AttrCache::MergeFromReply(uint64_t fileid, const Fattr3& attr) {
  Entry& entry = GetOrInsert(fileid);
  entry.complete = true;  // a reply carries the full attribute set
  if (entry.dirty) {
    // Keep our fresher I/O-derived size/times; adopt the rest.
    const uint64_t size = std::max(entry.attr.size, attr.size);
    const NfsTime mtime = entry.attr.mtime < attr.mtime ? attr.mtime : entry.attr.mtime;
    const NfsTime atime = entry.attr.atime < attr.atime ? attr.atime : entry.attr.atime;
    entry.attr = attr;
    entry.attr.size = size;
    entry.attr.mtime = mtime;
    entry.attr.atime = atime;
  } else {
    entry.attr = attr;
  }
}

void AttrCache::NoteRead(uint64_t fileid, NfsTime now) {
  auto it = entries_.find(fileid);
  if (it == entries_.end()) {
    return;  // nothing cached to update; the reply merge will seed it
  }
  TouchLru(fileid);
  it->second.attr.atime = now;
}

void AttrCache::NoteWrite(uint64_t fileid, uint64_t end_offset, NfsTime now) {
  Entry& entry = GetOrInsert(fileid);
  entry.attr.fileid = fileid;
  entry.attr.size = std::max(entry.attr.size, end_offset);
  entry.attr.mtime = now;
  entry.attr.ctime = now;
  entry.dirty = true;
}

const AttrCache::Entry* AttrCache::Find(uint64_t fileid) const {
  const auto it = entries_.find(fileid);
  return it == entries_.end() ? nullptr : &it->second;
}

void AttrCache::MarkClean(uint64_t fileid) {
  auto it = entries_.find(fileid);
  if (it != entries_.end()) {
    it->second.dirty = false;
  }
}

void AttrCache::Erase(uint64_t fileid) {
  auto it = lru_index_.find(fileid);
  if (it != lru_index_.end()) {
    lru_.erase(it->second);
    lru_index_.erase(it);
  }
  entries_.erase(fileid);
}

void AttrCache::Clear() {
  entries_.clear();
  lru_.clear();
  lru_index_.clear();
  evicted_dirty_.clear();
}

std::vector<uint64_t> AttrCache::DirtyFiles() const {
  std::vector<uint64_t> out;
  for (const auto& [fileid, entry] : entries_) {
    if (entry.dirty) {
      out.push_back(fileid);
    }
  }
  return out;
}

std::vector<std::pair<uint64_t, Fattr3>> AttrCache::TakeEvictedDirty() {
  return std::exchange(evicted_dirty_, {});
}

const LookupCache::Entry* LookupCache::Find(uint64_t dir_id, uint64_t name_fp,
                                            uint64_t now_ns,
                                            uint64_t ttl_ns) {
  const uint64_t key = KeyOf(dir_id, name_fp);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return nullptr;
  }
  const Entry& e = it->second;
  if (e.dir_id != dir_id || e.name_fp != name_fp) {
    return nullptr;  // key-fold collision; treat as a miss, do not evict
  }
  if (ttl_ns != 0 && now_ns >= e.filled_at + ttl_ns) {
    EraseKey(key);
    return nullptr;
  }
  TouchLru(key);
  return &it->second;
}

void LookupCache::Insert(uint64_t dir_id, uint64_t name_fp,
                         const FileHandle& fh, const Fattr3& attr,
                         uint32_t slot, uint64_t now_ns) {
  const uint64_t key = KeyOf(dir_id, name_fp);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_ && !lru_.empty()) {
      const uint64_t victim = lru_.back();
      lru_.pop_back();
      lru_index_.erase(victim);
      entries_.erase(victim);
      ++evictions_;
    }
    lru_.push_front(key);
    lru_index_[key] = lru_.begin();
    it = entries_.emplace(key, Entry{}).first;
  } else {
    TouchLru(key);
  }
  Entry& e = it->second;
  e.dir_id = dir_id;
  e.name_fp = name_fp;
  e.fh = fh;
  e.attr = attr;
  e.slot = slot;
  e.filled_at = now_ns;
}

void LookupCache::Erase(uint64_t dir_id, uint64_t name_fp) {
  EraseKey(KeyOf(dir_id, name_fp));
}

size_t LookupCache::InvalidateSlots(const std::vector<uint8_t>& changed) {
  size_t flushed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const uint32_t slot = it->second.slot;
    if (slot < changed.size() && changed[slot]) {
      auto lru_it = lru_index_.find(it->first);
      if (lru_it != lru_index_.end()) {
        lru_.erase(lru_it->second);
        lru_index_.erase(lru_it);
      }
      it = entries_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  return flushed;
}

void LookupCache::Clear() {
  entries_.clear();
  lru_.clear();
  lru_index_.clear();
}

void LookupCache::TouchLru(uint64_t key) {
  auto it = lru_index_.find(key);
  if (it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
}

void LookupCache::EraseKey(uint64_t key) {
  auto it = lru_index_.find(key);
  if (it != lru_index_.end()) {
    lru_.erase(it->second);
    lru_index_.erase(it);
  }
  entries_.erase(key);
}

}  // namespace slice
