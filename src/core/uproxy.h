// The Slice µproxy: a request-switching packet filter interposed on a
// client's network path to the storage service (paper §2.1, §3, §4.1).
//
// It intercepts NFS packets addressed to the virtual server endpoint and:
//   * classifies each request (bulk I/O / small-file I/O / name space),
//   * selects a physical server via the configured routing policies
//     (threshold-split I/O, static or mirrored striping, optional
//     coordinator block maps; mkdir switching or name hashing for names),
//   * rewrites destination (requests) and source (replies) address/port with
//     incremental checksum adjustment,
//   * maintains soft state only: pending-request records, routing tables, a
//     file-attribute cache patched into every reply and written back to the
//     directory servers, and
//   * originates its own packets where an operation spans servers (mirrored
//     writes, multi-site commit, remove/truncate fan-out under coordinator
//     intention logging).
//
// Everything here may be discarded at any time (DropSoftState); end-to-end
// RPC retransmission recovers.
#ifndef SLICE_CORE_UPROXY_H_
#define SLICE_CORE_UPROXY_H_

#include <memory>
#include <optional>
#include <unordered_map>

#include "src/coord/coord_proto.h"
#include "src/core/attr_cache.h"
#include "src/core/pending_map.h"
#include "src/core/request_decode.h"
#include "src/core/routing_table.h"
#include "src/dir/dir_server.h"
#include "src/mgmt/mgmt_proto.h"
#include "src/net/host.h"
#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/stats.h"

namespace slice {

struct UproxyConfig {
  Endpoint virtual_server;
  std::vector<Endpoint> dir_servers;         // logical site -> physical
  std::vector<Endpoint> small_file_servers;  // may be empty
  std::vector<Endpoint> storage_nodes;
  std::vector<Endpoint> coordinators;        // may be empty

  NamePolicy name_policy = NamePolicy::kMkdirSwitching;
  double mkdir_redirect_probability = 0.25;  // p (mkdir switching only)
  uint32_t threshold = 65536;                // small-file threshold offset
  uint32_t stripe_unit = 32768;              // bulk striping unit
  bool use_block_maps = false;               // dynamic placement via coordinator

  size_t logical_name_slots = 64;
  size_t attr_cache_entries = 65536;
  SimTime attr_writeback_interval = FromSeconds(1);

  // Fleet routing (PR 7): rendezvous (HRW) hashing for storage striping and
  // small-file selection, so node add/remove moves only the minimal key
  // range instead of reshuffling nearly everything (modular placement).
  bool rendezvous_routing = false;
  // In-proxy metadata cache: serve LOOKUP (and complete GETATTR) replies
  // from the interposition point; entries are invalidated per logical name
  // slot when an epoch-stamped table push rebinds their slot.
  bool proxy_cache = false;
  size_t lookup_cache_entries = 4096;
  SimTime proxy_cache_ttl = 0;  // 0 = entries live until invalidated
  double per_packet_cpu_us = 10.0;  // client-side interposition cost
  // Per-byte CPU cost of duplicating a mirrored write's payload for each
  // extra replica ("the client host writes to both mirrors", §5).
  double mirror_copy_ns_per_byte = 8.0;

  // Ensemble control plane (src/mgmt) integration. When enabled the µproxy
  // accepts epoch-stamped table pushes and misdirect notices on
  // `control_port`, fetches fresh tables from `manager` on stale-epoch or
  // repeated-retransmission suspicion, routes around storage/SFS nodes the
  // manager has declared dead, and reports degraded mirrored writes to the
  // coordinator for later resync.
  bool mgmt_enabled = false;
  Endpoint manager;
  NetPort control_port = kMgmtClientPort;
  // Retransmission policy for µproxy-originated calls. The ensemble tightens
  // this when mgmt is on so fan-outs to a just-died node fail well inside the
  // client's own retransmission budget.
  RpcClientParams own_rpc_params;
};

class Uproxy : public PacketTap {
 public:
  // Installs itself as the tap on `client_host`'s network path.
  Uproxy(Network& net, EventQueue& queue, Host& client_host, UproxyConfig config);
  ~Uproxy() override;

  void HandleOutbound(Packet&& pkt) override;
  void HandleInbound(Packet&& pkt) override;
  // Flight-at-a-time inbound: the network hands over a whole same-instant
  // delivery flight in one call. Per-packet processing is identical to
  // HandleInbound (order preserved, so same-seed artifacts match); the
  // batch exists to amortize per-dispatch overhead and is attributed to its
  // own wall scope.
  void HandleInboundBatch(std::span<Packet> pkts) override;

  // Discards all soft state (pending records, attribute cache, block-map
  // cache). Correctness must survive this (paper §2.1).
  void DropSoftState();

  // Reconfiguration: reload the directory-server routing table.
  void ReloadDirServers(std::vector<Endpoint> servers) { dir_table_.Reload(std::move(servers)); }
  RoutingTable& dir_table() { return dir_table_; }

  // Directory server owning fileID-embedded site `site`. Fixed placement by
  // default (site -> site % N); a manager-installed table rebinds dead sites
  // to their adopters without disturbing the name-hash slot table.
  Endpoint DirServerForSite(uint64_t site) const {
    if (!dir_site_binding_.empty()) {
      return dir_table_.ByPhysical(dir_site_binding_[site % dir_site_binding_.size()]);
    }
    return dir_table_.ByPhysical(site);
  }

  // Installs a manager-computed table set. Stale epochs are ignored unless
  // `force` (tests use force to simulate a µproxy that missed pushes).
  // Returns true if the tables were installed.
  bool InstallTables(const MgmtTableSet& tables, bool force = false);
  uint64_t table_epoch() const { return table_epoch_; }
  bool StorageAlive(uint32_t node) const {
    return storage_alive_.empty() || (node < storage_alive_.size() && storage_alive_[node] != 0);
  }
  bool SfsAlive(uint32_t index) const {
    return sfs_alive_.empty() || (index < sfs_alive_.size() && sfs_alive_[index] != 0);
  }

  const OpCounters& counters() const { return counters_; }
  // Proxy CPU busy-time accounting (the profiler's coverage reference).
  const BusyResource& cpu() const { return cpu_; }
  const AttrCache& attr_cache() const { return attr_cache_; }
  const LookupCache& lookup_cache() const { return lookup_cache_; }
  size_t pending_count() const { return pending_.size(); }

  // Observability: the µproxy is where traces begin — each intercepted
  // client request is assigned a trace id, its root span spans intercept to
  // reply delivery, and the context is attached to every forwarded packet.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    own_rpc_->set_tracer(tracer);
  }

  // Event log: routing decisions, misdirect-driven reloads, table installs
  // and soft-state drops are recorded with the request's trace id — the
  // audit trail for the interposed decision points.
  void set_eventlog(obs::EventLog* log) {
    eventlog_ = log;
    own_rpc_->set_eventlog(log);
  }

  // Appends the trace ids of requests currently pending at this proxy
  // (deduped and sorted by the caller); the flight recorder snapshots these
  // so a dump names the requests that never completed.
  void CollectInflightTraceIds(std::vector<uint64_t>& out) const {
    pending_.ForEach([&out](uint64_t, const Pending& pending) {
      if (pending.trace_id != 0) {
        out.push_back(pending.trace_id);
      }
    });
  }

  // Metrics plane: route-mix and soft-state counters are provider-backed
  // over the OpCounters the µproxy already maintains; only the per-request
  // CPU histogram and attr-cache hit/miss counters touch the hot path.
  void set_metrics(obs::Metrics* metrics);

  // Profiler: per-stage wall scopes (decode / route / soft-state / trace /
  // rewrite / attr-patch / metrics under outbound / inbound) plus cpu+queue
  // sim-time charges at the interposition CPU. The ledger pointer is cached
  // here so steady-state charges never do a map lookup.
  void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    prof_ledger_ = profiler != nullptr ? profiler->LedgerFor(client_host_.addr()) : nullptr;
  }

  // --- routing decisions, exposed for tests and the Table 3 bench ---

  // Target server class for one decoded request.
  enum class RouteClass : uint8_t {
    kDirServer,      // simple rewrite to a directory server
    kSmallFile,      // simple rewrite to a small-file server
    kStorage,        // simple rewrite to one storage node
    kMirrorWrite,    // absorb + fan out to replicas
    kMultiCommit,    // absorb + commit fan-out (+ intent)
    kPassThrough,    // not NFS / not ours
    kUnavailable,    // every server that could answer is dead; fail fast
  };

  struct RouteDecision {
    RouteClass cls = RouteClass::kPassThrough;
    Endpoint target;
    uint32_t storage_index = 0;  // selected node (kStorage)
    Nfsstat3 error = Nfsstat3::kOk;  // synthesized status (kUnavailable)
  };

  RouteDecision SelectRoute(const DecodedRequest& req);
  // Fast-path variant over the cached single-pass view: `payload` is the UDP
  // payload the view was decoded from (names are payload offsets).
  RouteDecision SelectRoute(const DecodedView& req, ByteSpan payload);

  // Storage-node index for (file, byte offset) under static striping;
  // `replica` < fh.replication() selects a mirror.
  uint32_t StripeSite(const FileHandle& fh, uint64_t offset, uint32_t replica = 0) const;

 private:
  struct Pending {
    NfsProc proc = NfsProc::kNull;
    FileHandle fh;
    uint64_t offset = 0;
    uint32_t count = 0;
    bool absorbed = false;  // fan-out in progress; drop duplicate requests
    // Client retransmissions seen; repeated retransmission of the same call
    // suggests a stale routing table (the target may be dead).
    uint8_t retransmits = 0;
    // Trace root assigned at intercept (0 when tracing is off).
    uint64_t trace_id = 0;
    uint64_t root_span_id = 0;
    SimTime trace_start = 0;
    // Name fingerprint of an in-flight LOOKUP (proxy cache fill key; 0 when
    // the proxy cache is off or the op is not a lookup).
    uint64_t name_fp = 0;
    // Tenant tag (AUTH_SYS uid) and first-forward time: the µproxy is the
    // end-to-end QoS observation point, so per-tenant latency is measured
    // from first forward to reply delivery (client retransmissions keep the
    // original issue time).
    uint32_t tenant = 0;
    SimTime issued_at = 0;
  };
  static uint64_t KeyOf(NetPort port, uint32_t xid) {
    return (static_cast<uint64_t>(port) << 32) | xid;
  }

  NfsTime Now() const;
  SimTime ChargeCpu();
  // Traced variant: records queue + cpu spans for the charge under `ctx`.
  SimTime ChargeCpu(const obs::TraceContext& ctx);

  // Trace bookkeeping: mints (or re-uses, on client retransmission) the
  // trace root for `pending`, recording a `route` marker on first sight.
  obs::TraceContext BeginTrace(Pending& pending, const char* route);
  // Records the root span for a completed operation ending at `end`.
  void FinishTrace(const Pending& pending, SimTime end);

  // Routing core shared by both SelectRoute overloads; `name` views into
  // whichever representation the caller holds.
  RouteDecision SelectRouteImpl(NfsProc proc, const FileHandle& fh, std::string_view name,
                                uint64_t offset);

  // Simple rewrite-and-forward path (allocation-free in steady state).
  void ForwardRequest(Packet&& pkt, const DecodedView& req, Endpoint target,
                      const char* route);
  void PassThroughOutbound(Packet&& pkt);

  // Absorb paths (the µproxy acts as a client toward the ensemble).
  void AbsorbMirrorWrite(const DecodedView& req, Endpoint client, ByteSpan payload);
  void AbsorbMultiCommit(const DecodedView& req, Endpoint client);
  // Background fan-outs triggered by observed name-space operations.
  void ScheduleDataRemove(const FileHandle& fh);
  void ScheduleDataTruncate(const FileHandle& fh, uint64_t size);

  // Sends a synthesized NFS reply to the local client.
  void ReplyToClient(Endpoint client, uint32_t xid, const Bytes& result_body);
  // Synthesizes a proc-appropriate error reply (dead-server fail-fast path).
  // `tenant` attributes the failure when no pending record exists to carry it.
  void SynthesizeErrorReply(NfsProc proc, uint32_t xid, Endpoint client, Nfsstat3 status,
                            uint32_t tenant = 0);

  // Per-tenant QoS accounting against the hub-owned tenant instruments:
  // O(1) array index, Counter::Add / LatencyStats::Record only — nothing on
  // this path allocates (fastpath_alloc_test holds with tenants on).
  void AccountTenant(uint32_t tenant, NfsProc proc, uint32_t nbytes, SimTime latency,
                     uint64_t trace_id, bool error);

  // Control-plane integration.
  void HandleControl(ByteSpan payload);
  void FetchTables();
  void LogDegradedWrite(const FileHandle& fh, uint64_t offset, uint32_t count,
                        uint32_t node, std::function<void(bool)> cb);

  // In-proxy metadata cache (proxy_cache). The serve paths are zero-alloc in
  // steady state: probe is a hash find + LRU splice, the reply is encoded
  // into the reused `reply_enc_` and carried by a pool-backed packet.
  // Each returns true when the request was answered from the cache.
  bool TryServeLookup(const Packet& pkt, const DecodedView& req, uint64_t name_fp);
  bool TryServeGetattr(const Packet& pkt, const DecodedView& req);
  // Delivers `reply_enc_`'s current contents to the local client; returns
  // the CPU-done delivery instant (cache-hit latency for QoS accounting).
  SimTime SendCachedReply(Endpoint client);
  // Conservative request-time invalidation for name-mutating operations.
  void InvalidateOnNameOp(const DecodedView& req, ByteSpan payload);
  // Reply-side cache fill from a successful LOOKUP.
  void FillLookupCache(const Packet& pkt, const Pending& pending);

  // Reply-side attribute patching.
  void PatchReplyAttrs(Packet& pkt, const Pending& pending, const DecodedReply& reply);
  // Finds the absolute packet offset of the target file's fattr3 within the
  // reply, or nullopt. Exposed via FRIEND_TEST-free design: tests go through
  // public packet behavior instead.
  std::optional<size_t> LocateTargetAttr(ByteSpan payload, const Pending& pending,
                                         const DecodedReply& reply) const;

  // Attribute writeback to the directory service.
  void WritebackAttrs(uint64_t fileid, const Fattr3& attr);
  void FlushDirtyAttrs();
  void ArmWritebackTimer();

  // Coordinator helpers.
  Endpoint CoordinatorFor(const FileHandle& fh) const;
  void WithIntent(IntentOp op, const FileHandle& fh, uint64_t arg,
                  std::function<void(std::function<void()> complete)> body);

  // Typed µproxy-originated NFS calls.
  void OwnWrite(Endpoint server, const FileHandle& fh, uint64_t offset, ByteSpan data,
                StableHow stable, std::function<void(Status, const WriteRes&)> cb);
  void OwnCommit(Endpoint server, const FileHandle& fh,
                 std::function<void(Status, const CommitRes&)> cb);
  void OwnSetattrSize(Endpoint server, const FileHandle& fh, uint64_t size,
                      std::function<void(Status)> cb);
  void OwnRemoveObject(Endpoint server, const FileHandle& fh, std::function<void(Status)> cb);
  void OwnLookup(Endpoint server, const FileHandle& dir, const std::string& name,
                 std::function<void(Status, const LookupRes&)> cb);

  Network& net_;
  EventQueue& queue_;
  Host& client_host_;
  UproxyConfig config_;
  RoutingTable dir_table_;
  RoutingTable sfs_table_;
  AttrCache attr_cache_;
  LookupCache lookup_cache_;
  obs::Tracer* tracer_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  uint64_t* prof_ledger_ = nullptr;  // cached LedgerFor(client host); null when off
  // Hot-path instruments (null when metrics are off — see obs::Inc/Observe).
  obs::Histogram* m_cpu_ = nullptr;
  obs::Counter* m_attr_hits_ = nullptr;
  obs::Counter* m_attr_misses_ = nullptr;
  obs::Counter* m_lookup_hits_ = nullptr;
  obs::Counter* m_lookup_misses_ = nullptr;
  // Tenant instrument LUT (hub-owned, stable storage; index j = tenant j+1).
  obs::TenantInstruments* tenant_data_ = nullptr;
  uint32_t tenant_count_ = 0;
  std::unique_ptr<RpcClient> own_rpc_;  // µproxy-originated traffic
  BusyResource cpu_;
  // Flat open-addressing table: pending insert/erase is once per forwarded
  // request and must not allocate in steady state.
  FlatU64Map<Pending> pending_;
  // Scratch encoder for reply attribute patching (capacity reused).
  XdrEncoder patch_enc_;
  // Scratch encoder for cache-served replies (capacity reused).
  XdrEncoder reply_enc_;
  // Scratch slot-changed bitmap for epoch invalidation (capacity reused).
  std::vector<uint8_t> changed_slots_;
  // Block-map cache (dynamic placement): fileid -> site per block.
  std::unordered_map<uint64_t, std::vector<uint32_t>> map_cache_;
  OpCounters counters_;
  // Control-plane view: epoch of the installed tables plus liveness bits for
  // the identity-bound server classes (empty = everything assumed alive).
  uint64_t table_epoch_ = 0;
  // fileID-embedded site -> physical dir index (empty = identity placement).
  std::vector<uint32_t> dir_site_binding_;
  std::vector<uint8_t> storage_alive_;
  std::vector<uint8_t> sfs_alive_;
  bool table_fetch_inflight_ = false;
  bool writeback_timer_armed_ = false;
  // Guards event-queue callbacks against running after destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slice

#endif  // SLICE_CORE_UPROXY_H_
