// The µproxy's packet-decode stage: walks the ONC RPC header (including the
// variable-length credential the paper blames for most of the decode cost,
// Table 3) and extracts exactly the fields request routing needs — request
// type, file handles, name components, offset/count (paper §3: "the µproxy
// examines up to four fields of each request").
#ifndef SLICE_CORE_REQUEST_DECODE_H_
#define SLICE_CORE_REQUEST_DECODE_H_

#include <string>
#include <string_view>

#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_message.h"

namespace slice {

// Single-pass decode result, cached on the packet (Packet::set_view) after
// the µproxy's first walk of the RPC/NFS headers so the rewrite, soft-state,
// trace and metrics stages reuse offsets instead of re-parsing. Trivially
// copyable by design: names are stored as (offset, length) into the UDP
// payload, materialized lazily via name()/name2(). The struct must stay
// within Packet::kViewSlotCap bytes, and the offsets are only meaningful
// against the exact payload the view was decoded from — any mutation that
// moves payload bytes invalidates it (the packet's mutators clear the slot).
struct DecodedView {
  uint32_t xid = 0;
  NfsProc proc = NfsProc::kNull;
  StableHow stable = StableHow::kUnstable;
  uint8_t has_fh = 0;
  // Primary handle: the target file for I/O and attribute ops, the parent
  // directory for name ops. Secondary handle: rename target dir / link file.
  FileHandle fh;
  FileHandle fh2;
  // Name components as payload offsets (zero-copy; kLookup etc.).
  uint32_t name_off = 0;
  uint32_t name_len = 0;
  uint32_t name2_off = 0;
  uint32_t name2_len = 0;
  // I/O fields.
  uint64_t offset = 0;
  uint32_t count = 0;
  uint32_t body_offset = 0;  // procedure body within the RPC payload
  // Tenant tag lifted from the AUTH_SYS uid (0 = untenanted).
  uint32_t tenant = 0;

  std::string_view name(ByteSpan payload) const {
    return std::string_view(reinterpret_cast<const char*>(payload.data()) + name_off, name_len);
  }
  std::string_view name2(ByteSpan payload) const {
    return std::string_view(reinterpret_cast<const char*>(payload.data()) + name2_off,
                            name2_len);
  }
};

// Tag for Packet::set_view/get_view slots carrying a DecodedView.
constexpr uint32_t kDecodedViewTag = 0x44563031;  // "DV01"

// Single-pass, allocation-free decode of an NFS call from a UDP payload.
// Returns kCorrupt for non-NFS-call traffic (which the µproxy passes
// through untouched).
Status DecodeNfsRequestView(ByteSpan payload, DecodedView* out);

struct DecodedRequest {
  uint32_t xid = 0;
  NfsProc proc = NfsProc::kNull;
  // Primary handle: the target file for I/O and attribute ops, the parent
  // directory for name ops.
  FileHandle fh;
  bool has_fh = false;
  std::string name;   // name component for name ops
  // Secondary pair (rename target, link directory).
  FileHandle fh2;
  std::string name2;
  // I/O fields.
  uint64_t offset = 0;
  uint32_t count = 0;
  StableHow stable = StableHow::kUnstable;
  // Byte offset of the procedure body within the RPC payload.
  size_t body_offset = 0;
};

// Materializing wrapper over DecodeNfsRequestView (owned std::string names);
// used by tests, benches and slow paths that outlive the packet buffer.
Status DecodeNfsRequest(ByteSpan payload, DecodedRequest* out);

// Reply-side peek: (xid, accept_stat, body offset) for attribute patching.
struct DecodedReply {
  uint32_t xid = 0;
  RpcAcceptStat stat = RpcAcceptStat::kSuccess;
  size_t body_offset = 0;
};

Status DecodeNfsReply(ByteSpan payload, DecodedReply* out);

// Cache-fill peek at a successful LOOKUP reply: the child handle plus its
// post-op attributes when the server included them. Allocation-free and
// trivially copyable, like DecodedView. `nfs_status` is the raw nfsstat3;
// fh/attr are only meaningful when it is 0 (NFS3_OK).
struct LookupReplyView {
  uint32_t xid = 0;
  uint32_t nfs_status = 0;
  FileHandle fh;
  uint8_t has_attr = 0;
  Fattr3 attr;
};

Status DecodeLookupReplyView(ByteSpan payload, LookupReplyView* out);

// Cache-fill peek at a GETATTR reply (status + full attribute set).
struct GetattrReplyView {
  uint32_t xid = 0;
  uint32_t nfs_status = 0;
  Fattr3 attr;
};

Status DecodeGetattrReplyView(ByteSpan payload, GetattrReplyView* out);

}  // namespace slice

#endif  // SLICE_CORE_REQUEST_DECODE_H_
