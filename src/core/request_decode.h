// The µproxy's packet-decode stage: walks the ONC RPC header (including the
// variable-length credential the paper blames for most of the decode cost,
// Table 3) and extracts exactly the fields request routing needs — request
// type, file handles, name components, offset/count (paper §3: "the µproxy
// examines up to four fields of each request").
#ifndef SLICE_CORE_REQUEST_DECODE_H_
#define SLICE_CORE_REQUEST_DECODE_H_

#include <string>

#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_message.h"

namespace slice {

struct DecodedRequest {
  uint32_t xid = 0;
  NfsProc proc = NfsProc::kNull;
  // Primary handle: the target file for I/O and attribute ops, the parent
  // directory for name ops.
  FileHandle fh;
  bool has_fh = false;
  std::string name;   // name component for name ops
  // Secondary pair (rename target, link directory).
  FileHandle fh2;
  std::string name2;
  // I/O fields.
  uint64_t offset = 0;
  uint32_t count = 0;
  StableHow stable = StableHow::kUnstable;
  // Byte offset of the procedure body within the RPC payload.
  size_t body_offset = 0;
};

// Decodes an NFS call from a UDP payload. Returns kCorrupt for
// non-NFS-call traffic (which the µproxy passes through untouched).
Status DecodeNfsRequest(ByteSpan payload, DecodedRequest* out);

// Reply-side peek: (xid, accept_stat, body offset) for attribute patching.
struct DecodedReply {
  uint32_t xid = 0;
  RpcAcceptStat stat = RpcAcceptStat::kSuccess;
  size_t body_offset = 0;
};

Status DecodeNfsReply(ByteSpan payload, DecodedReply* out);

}  // namespace slice

#endif  // SLICE_CORE_REQUEST_DECODE_H_
