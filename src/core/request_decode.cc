#include "src/core/request_decode.h"

namespace slice {

Status DecodeNfsRequest(ByteSpan payload, DecodedRequest* out) {
  Result<RpcPeek> peek = PeekRpcMessage(payload);
  if (!peek.ok()) {
    return peek.status();
  }
  if (peek->type != RpcMsgType::kCall || peek->prog != kNfsProgram ||
      peek->vers != kNfsVersion) {
    return Status(StatusCode::kCorrupt, "uproxy: not an NFSv3 call");
  }
  out->xid = peek->xid;
  out->proc = static_cast<NfsProc>(peek->proc);
  out->body_offset = peek->body_offset;

  XdrDecoder dec(payload.subspan(peek->body_offset));
  switch (out->proc) {
    case NfsProc::kNull:
    case NfsProc::kMknod:
    case NfsProc::kPathconf:
      return OkStatus();

    case NfsProc::kGetattr:
    case NfsProc::kReadlink:
    case NfsProc::kFsstat:
    case NfsProc::kFsinfo:
    case NfsProc::kAccess:
    case NfsProc::kSetattr: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = true;
      if (out->proc == NfsProc::kSetattr) {
        // Pull the size field (if being set) so truncates can fan out.
        Result<Sattr3> sattr = DecodeSattr3(dec);
        if (sattr.ok() && sattr->size.has_value()) {
          out->offset = *sattr->size;
          out->count = 1;  // marks "size change present"
        }
      }
      return OkStatus();
    }

    case NfsProc::kLookup:
    case NfsProc::kRemove:
    case NfsProc::kRmdir:
    case NfsProc::kCreate:
    case NfsProc::kMkdir:
    case NfsProc::kSymlink: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = true;
      SLICE_ASSIGN_OR_RETURN(out->name, dec.GetString(255));
      return OkStatus();
    }

    case NfsProc::kRename: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = true;
      SLICE_ASSIGN_OR_RETURN(out->name, dec.GetString(255));
      SLICE_ASSIGN_OR_RETURN(out->fh2, DecodeFileHandle(dec));
      SLICE_ASSIGN_OR_RETURN(out->name2, dec.GetString(255));
      return OkStatus();
    }

    case NfsProc::kLink: {
      // link(file, dir, name): route by the (dir, name) entry placement.
      SLICE_ASSIGN_OR_RETURN(out->fh2, DecodeFileHandle(dec));  // file
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));   // dir
      out->has_fh = true;
      SLICE_ASSIGN_OR_RETURN(out->name, dec.GetString(255));
      return OkStatus();
    }

    case NfsProc::kRead:
    case NfsProc::kCommit: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = true;
      SLICE_ASSIGN_OR_RETURN(out->offset, dec.GetUint64());
      SLICE_ASSIGN_OR_RETURN(out->count, dec.GetUint32());
      return OkStatus();
    }

    case NfsProc::kWrite: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = true;
      SLICE_ASSIGN_OR_RETURN(out->offset, dec.GetUint64());
      SLICE_ASSIGN_OR_RETURN(out->count, dec.GetUint32());
      SLICE_ASSIGN_OR_RETURN(uint32_t stable, dec.GetUint32());
      if (stable > 2) {
        return Status(StatusCode::kCorrupt, "uproxy: bad stable_how");
      }
      out->stable = static_cast<StableHow>(stable);
      return OkStatus();
    }

    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = true;
      return OkStatus();
    }
  }
  return Status(StatusCode::kCorrupt, "uproxy: unknown procedure");
}

Status DecodeNfsReply(ByteSpan payload, DecodedReply* out) {
  Result<RpcPeek> peek = PeekRpcMessage(payload);
  if (!peek.ok()) {
    return peek.status();
  }
  if (peek->type != RpcMsgType::kReply) {
    return Status(StatusCode::kCorrupt, "uproxy: not a reply");
  }
  out->xid = peek->xid;
  out->stat = peek->accept_stat;
  out->body_offset = peek->body_offset;
  return OkStatus();
}

}  // namespace slice
