#include "src/core/request_decode.h"

namespace slice {
namespace {

// Records where a zero-copy string view lives relative to the payload start.
void NoteName(ByteSpan payload, std::string_view sv, uint32_t* off, uint32_t* len) {
  *off = static_cast<uint32_t>(reinterpret_cast<const uint8_t*>(sv.data()) - payload.data());
  *len = static_cast<uint32_t>(sv.size());
}

}  // namespace

Status DecodeNfsRequestView(ByteSpan payload, DecodedView* out) {
  Result<RpcPeek> peek = PeekRpcMessage(payload);
  if (!peek.ok()) {
    return peek.status();
  }
  if (peek->type != RpcMsgType::kCall || peek->prog != kNfsProgram ||
      peek->vers != kNfsVersion) {
    return Status(StatusCode::kCorrupt, "uproxy: not an NFSv3 call");
  }
  out->xid = peek->xid;
  out->proc = static_cast<NfsProc>(peek->proc);
  out->body_offset = static_cast<uint32_t>(peek->body_offset);
  out->tenant = peek->tenant;

  XdrDecoder dec(payload.subspan(peek->body_offset));
  switch (out->proc) {
    case NfsProc::kNull:
    case NfsProc::kMknod:
    case NfsProc::kPathconf:
      return OkStatus();

    case NfsProc::kGetattr:
    case NfsProc::kReadlink:
    case NfsProc::kFsstat:
    case NfsProc::kFsinfo:
    case NfsProc::kAccess:
    case NfsProc::kSetattr: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = 1;
      if (out->proc == NfsProc::kSetattr) {
        // Pull the size field (if being set) so truncates can fan out.
        Result<Sattr3> sattr = DecodeSattr3(dec);
        if (sattr.ok() && sattr->size.has_value()) {
          out->offset = *sattr->size;
          out->count = 1;  // marks "size change present"
        }
      }
      return OkStatus();
    }

    case NfsProc::kLookup:
    case NfsProc::kRemove:
    case NfsProc::kRmdir:
    case NfsProc::kCreate:
    case NfsProc::kMkdir:
    case NfsProc::kSymlink: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = 1;
      SLICE_ASSIGN_OR_RETURN(std::string_view name, dec.GetStringView(255));
      NoteName(payload, name, &out->name_off, &out->name_len);
      return OkStatus();
    }

    case NfsProc::kRename: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = 1;
      SLICE_ASSIGN_OR_RETURN(std::string_view name, dec.GetStringView(255));
      NoteName(payload, name, &out->name_off, &out->name_len);
      SLICE_ASSIGN_OR_RETURN(out->fh2, DecodeFileHandle(dec));
      SLICE_ASSIGN_OR_RETURN(std::string_view name2, dec.GetStringView(255));
      NoteName(payload, name2, &out->name2_off, &out->name2_len);
      return OkStatus();
    }

    case NfsProc::kLink: {
      // link(file, dir, name): route by the (dir, name) entry placement.
      SLICE_ASSIGN_OR_RETURN(out->fh2, DecodeFileHandle(dec));  // file
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));   // dir
      out->has_fh = 1;
      SLICE_ASSIGN_OR_RETURN(std::string_view name, dec.GetStringView(255));
      NoteName(payload, name, &out->name_off, &out->name_len);
      return OkStatus();
    }

    case NfsProc::kRead:
    case NfsProc::kCommit: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = 1;
      SLICE_ASSIGN_OR_RETURN(out->offset, dec.GetUint64());
      SLICE_ASSIGN_OR_RETURN(out->count, dec.GetUint32());
      return OkStatus();
    }

    case NfsProc::kWrite: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = 1;
      SLICE_ASSIGN_OR_RETURN(out->offset, dec.GetUint64());
      SLICE_ASSIGN_OR_RETURN(out->count, dec.GetUint32());
      SLICE_ASSIGN_OR_RETURN(uint32_t stable, dec.GetUint32());
      if (stable > 2) {
        return Status(StatusCode::kCorrupt, "uproxy: bad stable_how");
      }
      out->stable = static_cast<StableHow>(stable);
      return OkStatus();
    }

    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus: {
      SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
      out->has_fh = 1;
      return OkStatus();
    }
  }
  return Status(StatusCode::kCorrupt, "uproxy: unknown procedure");
}

Status DecodeNfsRequest(ByteSpan payload, DecodedRequest* out) {
  DecodedView view;
  SLICE_RETURN_IF_ERROR(DecodeNfsRequestView(payload, &view));
  out->xid = view.xid;
  out->proc = view.proc;
  out->fh = view.fh;
  out->has_fh = view.has_fh != 0;
  out->name.assign(view.name(payload));
  out->fh2 = view.fh2;
  out->name2.assign(view.name2(payload));
  out->offset = view.offset;
  out->count = view.count;
  out->stable = view.stable;
  out->body_offset = view.body_offset;
  return OkStatus();
}

Status DecodeNfsReply(ByteSpan payload, DecodedReply* out) {
  Result<RpcPeek> peek = PeekRpcMessage(payload);
  if (!peek.ok()) {
    return peek.status();
  }
  if (peek->type != RpcMsgType::kReply) {
    return Status(StatusCode::kCorrupt, "uproxy: not a reply");
  }
  out->xid = peek->xid;
  out->stat = peek->accept_stat;
  out->body_offset = peek->body_offset;
  return OkStatus();
}

namespace {

// Shared reply preamble for the cache-fill decoders: accepted reply,
// successful accept_stat, body positioned past the RPC header.
Status PeekSuccessfulReply(ByteSpan payload, uint32_t* xid,
                           size_t* body_offset) {
  Result<RpcPeek> peek = PeekRpcMessage(payload);
  if (!peek.ok()) {
    return peek.status();
  }
  if (peek->type != RpcMsgType::kReply) {
    return Status(StatusCode::kCorrupt, "uproxy: not a reply");
  }
  if (peek->accept_stat != RpcAcceptStat::kSuccess) {
    return Status(StatusCode::kCorrupt, "uproxy: reply not accepted");
  }
  *xid = peek->xid;
  *body_offset = peek->body_offset;
  return OkStatus();
}

}  // namespace

Status DecodeLookupReplyView(ByteSpan payload, LookupReplyView* out) {
  size_t body_offset = 0;
  SLICE_RETURN_IF_ERROR(PeekSuccessfulReply(payload, &out->xid, &body_offset));
  XdrDecoder dec(payload.subspan(body_offset));
  SLICE_ASSIGN_OR_RETURN(out->nfs_status, dec.GetUint32());
  if (out->nfs_status != 0) {
    return OkStatus();  // error reply: no handle/attributes to fill from
  }
  SLICE_ASSIGN_OR_RETURN(out->fh, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(uint32_t has_attr, dec.GetUint32());
  if (has_attr > 1) {
    return Status(StatusCode::kCorrupt, "uproxy: bad post_op_attr flag");
  }
  out->has_attr = static_cast<uint8_t>(has_attr);
  if (has_attr) {
    SLICE_ASSIGN_OR_RETURN(out->attr, DecodeFattr3(dec));
  }
  return OkStatus();
}

Status DecodeGetattrReplyView(ByteSpan payload, GetattrReplyView* out) {
  size_t body_offset = 0;
  SLICE_RETURN_IF_ERROR(PeekSuccessfulReply(payload, &out->xid, &body_offset));
  XdrDecoder dec(payload.subspan(body_offset));
  SLICE_ASSIGN_OR_RETURN(out->nfs_status, dec.GetUint32());
  if (out->nfs_status != 0) {
    return OkStatus();
  }
  SLICE_ASSIGN_OR_RETURN(out->attr, DecodeFattr3(dec));
  return OkStatus();
}

}  // namespace slice
