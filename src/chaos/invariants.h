// Invariant checker: replays a collected event stream (EventLog::Collect or
// the events of a flight dump — same records) and asserts the recovery
// properties the paper's robustness story rests on:
//
//  1. No acked write lost. Every chaos_write_acked journal entry must be
//     matched by a chaos_read_ok with the same checksum after the faults
//     heal; a chaos_read_lost (or a checksum mismatch, i.e. torn data) is a
//     durability violation. The chaos workloads (src/chaos/workload.h) emit
//     these records only for mutations the server *acknowledged*.
//  2. Failure episodes close. Every node_dead is followed by a node_rejoin
//     (when the scenario heals its faults), every adopt_begin by an
//     adopt_done, and a site is never adopted twice without an intervening
//     handoff (no double-adopt / split brain).
//  3. Unavailability is bounded. dead→rejoin and dead→adopt_done gaps must
//     fit the scenario's declared windows — recovery that technically
//     happens but takes forever is a failure.
//  4. Routing epochs are monotone. epoch_bump values at the manager
//     strictly increase; table_install epochs per µproxy never go
//     backwards.
//  5. Gray means alive. Scenarios that only degrade (slow disks, mild
//     skew, asymmetric loss toward a node) declare expect_no_deaths: a
//     node_dead under such a fault is a false positive of the detector.
//  6. Faults heal. Every fault_inject with a finite duration has its
//     fault_clear.
//
// The checker is pure: events in, violation strings out. Tests assert
// report.ok() and print report.Summary() on failure.
#ifndef SLICE_CHAOS_INVARIANTS_H_
#define SLICE_CHAOS_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/eventlog.h"

namespace slice::chaos {

struct InvariantBounds {
  // Max sim-time from node_dead to node_rejoin (0 = unbounded).
  SimTime max_outage = 0;
  // Max sim-time from a dir node_dead to the matching adopt_done.
  SimTime max_adopt_delay = FromSeconds(2);
  // Every dead node rejoins (scenario heals all its crash faults).
  bool expect_all_recover = true;
  // Every dead dir site gets adopted (a live replacement existed).
  bool expect_adoption = false;
  // No node may be declared dead at all (gray / degraded-only scenarios).
  bool expect_no_deaths = false;
  // Every acked write must be explicitly verified (a read_ok per key);
  // read_lost and checksum mismatches are violations regardless.
  bool require_verified = true;
  // Every fault_inject has a matching fault_clear by end of stream. Turn
  // off for plans that deliberately leave a fault live (duration 0).
  bool expect_faults_heal = true;
  // At least one hotspot rebalance episode commits (scenario drives a
  // deliberate directory-load imbalance at the manager).
  bool expect_rebalance = false;
};

struct InvariantReport {
  std::vector<std::string> violations;

  // Stream statistics, for test assertions and the scenario-matrix table.
  size_t acked_writes = 0;
  size_t verified_ok = 0;
  size_t verified_lost = 0;
  size_t deaths = 0;
  size_t rejoins = 0;
  size_t adoptions_begun = 0;
  size_t adoptions_done = 0;
  size_t handoffs = 0;
  size_t resyncs = 0;
  size_t epoch_bumps = 0;
  size_t rebalances_begun = 0;
  size_t rebalances_committed = 0;
  size_t cache_hits = 0;
  size_t cache_flushes = 0;
  size_t faults_injected = 0;
  size_t faults_cleared = 0;
  uint64_t max_epoch = 0;
  SimTime worst_outage = 0;  // longest dead→rejoin gap observed

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Replays `events` (must be in Collect() order: sorted by (at, seq)).
InvariantReport CheckInvariants(const std::vector<obs::Event>& events,
                                const InvariantBounds& bounds);

}  // namespace slice::chaos

#endif  // SLICE_CHAOS_INVARIANTS_H_
