#include "src/chaos/chaos_engine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace slice::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kBurstLoss:
      return "burst_loss";
    case FaultKind::kGrayDisk:
      return "gray_disk";
    case FaultKind::kGrayNic:
      return "gray_nic";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kClockSkew:
      return "clock_skew";
  }
  return "?";
}

ChaosEngine::ChaosEngine(ChaosHooks hooks, ChaosConfig config)
    : hooks_(std::move(hooks)), config_(std::move(config)) {
  SLICE_CHECK(hooks_.queue != nullptr);
  SLICE_CHECK(hooks_.net != nullptr);
}

ChaosEngine::~ChaosEngine() { *alive_ = false; }

void ChaosEngine::Arm() {
  for (size_t i = 0; i < config_.faults.size(); ++i) {
    const FaultSpec& spec = config_.faults[i];
    std::shared_ptr<bool> alive = alive_;
    hooks_.queue->ScheduleBackgroundAt(spec.at, [this, alive, i] {
      if (*alive) {
        Apply(i);
      }
    });
    if (spec.duration > 0) {
      hooks_.queue->ScheduleBackgroundAt(spec.at + spec.duration, [this, alive, i] {
        if (*alive) {
          Heal(i);
        }
      });
    }
  }
}

void ChaosEngine::LogFault(const FaultSpec& spec, size_t fault_index, bool inject) {
  const auto target0 = static_cast<int64_t>(
      spec.targets.empty() ? 0 : NodeId(spec.targets[0].cls, spec.targets[0].index));
  obs::LogEvent(hooks_.log, kChaosControllerAddr, hooks_.queue->now(),
                inject ? obs::EventSev::kWarn : obs::EventSev::kInfo, obs::EventCat::kChaos,
                inject ? obs::EventCode::kFaultInject : obs::EventCode::kFaultClear,
                /*trace_id=*/0, FaultKindName(spec.kind),
                {{"fault", static_cast<int64_t>(fault_index)},
                 {"targets", static_cast<int64_t>(spec.targets.size())},
                 {"target0", target0}});
}

void ChaosEngine::ForEachShapedLink(const FaultSpec& spec,
                                    const std::function<void(uint32_t, uint32_t)>& fn) {
  // Empty target list = every directed link in the ensemble.
  if (spec.targets.empty()) {
    for (uint32_t a : hooks_.all_hosts) {
      for (uint32_t b : hooks_.all_hosts) {
        if (a != b) {
          fn(a, b);
        }
      }
    }
    return;
  }
  std::vector<uint32_t> target_addrs;
  target_addrs.reserve(spec.targets.size());
  for (const NodeRef& ref : spec.targets) {
    const uint32_t addr = hooks_.addr_of ? hooks_.addr_of(ref.cls, ref.index) : 0;
    if (addr != 0) {
      target_addrs.push_back(addr);
    }
  }
  auto is_target = [&](uint32_t addr) {
    return std::find(target_addrs.begin(), target_addrs.end(), addr) != target_addrs.end();
  };
  for (uint32_t t : target_addrs) {
    for (uint32_t other : hooks_.all_hosts) {
      if (other == t || is_target(other)) {
        continue;  // faults never sever targets from each other
      }
      fn(other, t);  // toward the target: always shaped
      if (!spec.asymmetric) {
        fn(t, other);
      }
    }
  }
}

void ChaosEngine::Apply(size_t fault_index) {
  const FaultSpec& spec = config_.faults[fault_index];
  ++injections_;
  LogFault(spec, fault_index, /*inject=*/true);
  switch (spec.kind) {
    case FaultKind::kPartition: {
      LinkShape shape;
      shape.blocked = true;
      ForEachShapedLink(spec, [this, &shape](uint32_t src, uint32_t dst) {
        hooks_.net->SetLinkShape(src, dst, shape);
      });
      return;
    }
    case FaultKind::kLoss: {
      LinkShape shape;
      shape.loss = spec.rate;
      ForEachShapedLink(spec, [this, &shape](uint32_t src, uint32_t dst) {
        hooks_.net->SetLinkShape(src, dst, shape);
      });
      return;
    }
    case FaultKind::kBurstLoss: {
      LinkShape shape;
      shape.burst_loss = spec.rate;
      shape.p_enter = spec.p_enter;
      shape.p_exit = spec.p_exit;
      ForEachShapedLink(spec, [this, &shape](uint32_t src, uint32_t dst) {
        hooks_.net->SetLinkShape(src, dst, shape);
      });
      return;
    }
    case FaultKind::kGrayDisk:
      for (const NodeRef& ref : spec.targets) {
        if (ref.cls == NodeClass::kStorage && hooks_.set_storage_disk_multiplier) {
          hooks_.set_storage_disk_multiplier(ref.index, spec.multiplier);
        }
      }
      return;
    case FaultKind::kGrayNic:
      for (const NodeRef& ref : spec.targets) {
        const uint32_t addr = hooks_.addr_of ? hooks_.addr_of(ref.cls, ref.index) : 0;
        if (addr != 0) {
          hooks_.net->SetHostExtraDelay(addr, spec.extra_latency);
        }
      }
      return;
    case FaultKind::kCrash:
      for (const NodeRef& ref : spec.targets) {
        if (hooks_.fail_node) {
          hooks_.fail_node(ref.cls, ref.index);
        }
      }
      return;
    case FaultKind::kClockSkew:
      for (const NodeRef& ref : spec.targets) {
        if (hooks_.set_heartbeat_scale) {
          hooks_.set_heartbeat_scale(ref.cls, ref.index, spec.multiplier);
        }
      }
      return;
  }
}

void ChaosEngine::Heal(size_t fault_index) {
  const FaultSpec& spec = config_.faults[fault_index];
  ++clears_;
  LogFault(spec, fault_index, /*inject=*/false);
  switch (spec.kind) {
    case FaultKind::kPartition:
    case FaultKind::kLoss:
    case FaultKind::kBurstLoss:
      ForEachShapedLink(spec, [this](uint32_t src, uint32_t dst) {
        hooks_.net->ClearLinkShape(src, dst);
      });
      return;
    case FaultKind::kGrayDisk:
      for (const NodeRef& ref : spec.targets) {
        if (ref.cls == NodeClass::kStorage && hooks_.set_storage_disk_multiplier) {
          hooks_.set_storage_disk_multiplier(ref.index, 1.0);
        }
      }
      return;
    case FaultKind::kGrayNic:
      for (const NodeRef& ref : spec.targets) {
        const uint32_t addr = hooks_.addr_of ? hooks_.addr_of(ref.cls, ref.index) : 0;
        if (addr != 0) {
          hooks_.net->SetHostExtraDelay(addr, 0);
        }
      }
      return;
    case FaultKind::kCrash:
      for (const NodeRef& ref : spec.targets) {
        if (hooks_.restart_node) {
          hooks_.restart_node(ref.cls, ref.index);
        }
      }
      return;
    case FaultKind::kClockSkew:
      for (const NodeRef& ref : spec.targets) {
        if (hooks_.set_heartbeat_scale) {
          hooks_.set_heartbeat_scale(ref.cls, ref.index, 1.0);
        }
      }
      return;
  }
}

}  // namespace slice::chaos
