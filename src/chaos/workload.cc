#include "src/chaos/workload.h"

#include <cmath>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace slice::chaos {
namespace {

// Journal keys: data claims are (file index, block slot); name claims are a
// hash of the entry name. The two shapes never mix in one workload.
constexpr int64_t kSlotBytes = 8192;

int64_t DataKey(uint32_t file, uint64_t offset) {
  return (static_cast<int64_t>(file) << 8) | static_cast<int64_t>(offset / kSlotBytes);
}

int64_t NameKey(const std::string& name) {
  // Positive and stable; the low 62 bits of FNV-1a over the name.
  return static_cast<int64_t>(Fnv1a64(std::string_view(name)) & 0x3fffffffffffffffull);
}

int64_t Checksum(ByteSpan data) {
  return static_cast<int64_t>(Fnv1a64(data) & 0x3fffffffffffffffull);
}

}  // namespace

const char* WorkloadShapeName(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kWriteVerify:
      return "write_verify";
    case WorkloadShape::kZipfHotspot:
      return "zipf_hotspot";
    case WorkloadShape::kMetadataStorm:
      return "metadata_storm";
  }
  return "?";
}

ChaosWorkload::ChaosWorkload(Ensemble& ensemble, ChaosWorkloadParams params)
    : ensemble_(ensemble),
      params_(params),
      queue_(ensemble.queue()),
      client_(ensemble.MakeSyncClient(params.client_index)),
      root_(ensemble.root()),
      rng_(params.seed) {
  if (params_.tenant != 0) {
    client_->async().rpc().set_tenant(params_.tenant);
  }
  if (params_.shape == WorkloadShape::kZipfHotspot) {
    zipf_cdf_.reserve(params_.num_files);
    double total = 0;
    for (size_t i = 0; i < params_.num_files; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), params_.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (double& w : zipf_cdf_) {
      w /= total;
    }
  }
}

template <typename Fn>
auto ChaosWorkload::RetryJukebox(Fn&& op) {
  for (int attempt = 0;; ++attempt) {
    auto res = op();
    if (res.status != Nfsstat3::kErrJukebox || attempt >= 60) {
      return res;
    }
    queue_.RunUntil(queue_.now() + FromMillis(10));
  }
}

void ChaosWorkload::Emit(obs::EventCode code, int64_t key, int64_t sum) {
  obs::LogEvent(ensemble_.eventlog(), ensemble_.client_host(params_.client_index).addr(),
                queue_.now(),
                code == obs::EventCode::kChaosReadLost ? obs::EventSev::kError
                                                       : obs::EventSev::kInfo,
                obs::EventCat::kChaos, code, /*trace_id=*/0,
                WorkloadShapeName(params_.shape), {{"key", key}, {"sum", sum}});
}

void ChaosWorkload::Journal(int64_t key, const Claim& claim) {
  journal_[key] = claim;
  stats_.journal_size = journal_.size();
  Emit(obs::EventCode::kChaosWriteAcked, key, claim.sum);
}

Bytes ChaosWorkload::Payload(int64_t key, uint32_t version) const {
  Bytes data(params_.write_bytes);
  uint64_t x = MixU64(static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull + version);
  for (size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) {
      x = MixU64(x);
    }
    data[i] = static_cast<uint8_t>(x >> ((i % 8) * 8));
  }
  return data;
}

size_t ChaosWorkload::ZipfPick() {
  const double u = rng_.NextDouble();
  for (size_t i = 0; i < zipf_cdf_.size(); ++i) {
    if (u <= zipf_cdf_[i]) {
      return i;
    }
  }
  return zipf_cdf_.empty() ? 0 : zipf_cdf_.size() - 1;
}

void ChaosWorkload::Setup() {
  if (params_.shape == WorkloadShape::kMetadataStorm) {
    return;  // the storm mints its own namespace as it runs
  }
  files_.reserve(params_.num_files);
  for (size_t i = 0; i < params_.num_files; ++i) {
    const std::string name = "chaos" + std::to_string(i);
    CreateRes created =
        RetryJukebox([&] { return client_->Create(root_, name).value(); });
    SLICE_CHECK(created.status == Nfsstat3::kOk);
    files_.push_back(*created.object);
    // Seed every file's slot 0 so early hot reads have something to hit.
    const int64_t key = DataKey(static_cast<uint32_t>(i), 0);
    const Bytes data = Payload(key, version_);
    WriteRes wrote = RetryJukebox(
        [&] { return client_->Write(files_[i], 0, data, StableHow::kFileSync).value(); });
    if (wrote.status == Nfsstat3::kOk) {
      Journal(key, Claim{Checksum(data), static_cast<uint32_t>(i), 0, {}});
    }
  }
  ++version_;
}

void ChaosWorkload::Run() {
  for (size_t op = 0; op < params_.ops; ++op) {
    queue_.RunUntil(queue_.now() + params_.op_interval);
    if (params_.shape == WorkloadShape::kMetadataStorm) {
      RunMetadataOp(op);
    } else {
      RunDataOp();
    }
  }
  queue_.RunUntilIdle();
}

void ChaosWorkload::RunDataOp() {
  ++stats_.ops_issued;
  const size_t file = params_.shape == WorkloadShape::kZipfHotspot
                          ? ZipfPick()
                          : static_cast<size_t>(rng_.NextBelow(files_.size()));
  if (rng_.NextDouble() < params_.write_fraction) {
    const uint64_t offset = rng_.NextBelow(4) * static_cast<uint64_t>(kSlotBytes);
    const int64_t key = DataKey(static_cast<uint32_t>(file), offset);
    const Bytes data = Payload(key, version_++);
    WriteRes wrote = RetryJukebox([&] {
      return client_->Write(files_[file], offset, data, StableHow::kFileSync).value();
    });
    if (wrote.status == Nfsstat3::kOk) {
      ++stats_.ops_ok;
      Journal(key, Claim{Checksum(data), static_cast<uint32_t>(file), offset, {}});
    } else {
      ++stats_.ops_failed;  // the fault window ate it: no durability claim
    }
  } else {
    const uint64_t offset = rng_.NextBelow(4) * static_cast<uint64_t>(kSlotBytes);
    ReadRes read = RetryJukebox(
        [&] { return client_->Read(files_[file], offset, params_.write_bytes).value(); });
    if (read.status == Nfsstat3::kOk) {
      ++stats_.ops_ok;
    } else {
      ++stats_.ops_failed;
    }
  }
}

void ChaosWorkload::RunMetadataOp(size_t op_index) {
  ++stats_.ops_issued;
  // Cycle create → mkdir → rename → remove → lookup so the namespace keeps
  // churning across all name-hashed dir sites.
  switch (op_index % 5) {
    case 0: {  // create a file
      const std::string name = "storm_f" + std::to_string(op_index);
      CreateRes res = RetryJukebox([&] { return client_->Create(root_, name).value(); });
      if (res.status == Nfsstat3::kOk) {
        ++stats_.ops_ok;
        storm_names_.push_back(name);
        Journal(NameKey(name), Claim{1, 0, 0, name});
      } else {
        ++stats_.ops_failed;
      }
      return;
    }
    case 1: {  // create a directory
      const std::string name = "storm_d" + std::to_string(op_index);
      CreateRes res = RetryJukebox([&] { return client_->Mkdir(root_, name).value(); });
      if (res.status == Nfsstat3::kOk) {
        ++stats_.ops_ok;
        storm_names_.push_back(name);
        Journal(NameKey(name), Claim{1, 0, 0, name});
      } else {
        ++stats_.ops_failed;
      }
      return;
    }
    case 2: {  // rename the oldest live name
      if (storm_names_.empty()) {
        return;
      }
      const std::string from = storm_names_.front();
      const std::string to = from + "_r";
      RenameRes res =
          RetryJukebox([&] { return client_->Rename(root_, from, root_, to).value(); });
      if (res.status == Nfsstat3::kOk) {
        ++stats_.ops_ok;
        storm_names_.erase(storm_names_.begin());
        storm_names_.push_back(to);
        Journal(NameKey(from), Claim{0, 0, 0, from});  // old name must be gone
        Journal(NameKey(to), Claim{1, 0, 0, to});
      } else {
        ++stats_.ops_failed;
      }
      return;
    }
    case 3: {  // remove a mid-age name
      if (storm_names_.size() < 4) {
        return;
      }
      const std::string name = storm_names_[storm_names_.size() / 2];
      RemoveRes res = RetryJukebox([&] { return client_->Remove(root_, name).value(); });
      if (res.status == Nfsstat3::kOk) {
        ++stats_.ops_ok;
        storm_names_.erase(storm_names_.begin() +
                           static_cast<ptrdiff_t>(storm_names_.size() / 2));
        Journal(NameKey(name), Claim{0, 0, 0, name});
      } else {
        ++stats_.ops_failed;
      }
      return;
    }
    default: {  // lookup a random live name (read pressure on the dirs)
      if (storm_names_.empty()) {
        return;
      }
      const std::string& name = storm_names_[rng_.NextBelow(storm_names_.size())];
      LookupRes res = RetryJukebox([&] { return client_->Lookup(root_, name).value(); });
      if (res.status == Nfsstat3::kOk) {
        ++stats_.ops_ok;
      } else {
        ++stats_.ops_failed;
      }
      return;
    }
  }
}

void ChaosWorkload::Verify() {
  if (params_.shape == WorkloadShape::kMetadataStorm) {
    VerifyNames();
  } else {
    VerifyData();
  }
}

void ChaosWorkload::VerifyData() {
  for (const auto& [key, claim] : journal_) {
    ReadRes read = RetryJukebox([&] {
      return client_->Read(files_[claim.file], claim.offset, params_.write_bytes).value();
    });
    if (read.status != Nfsstat3::kOk || read.data.size() != params_.write_bytes) {
      ++stats_.verified_lost;
      Emit(obs::EventCode::kChaosReadLost, key, 0);
      continue;
    }
    const int64_t sum = Checksum(read.data);
    ++stats_.verified_ok;
    Emit(obs::EventCode::kChaosReadOk, key, sum);  // checker flags mismatches
  }
}

void ChaosWorkload::VerifyNames() {
  for (const auto& [key, claim] : journal_) {
    LookupRes res = RetryJukebox([&] { return client_->Lookup(root_, claim.name).value(); });
    if (res.status == Nfsstat3::kOk) {
      ++stats_.verified_ok;
      Emit(obs::EventCode::kChaosReadOk, key, 1);  // present
    } else if (res.status == Nfsstat3::kErrNoent) {
      ++stats_.verified_ok;
      Emit(obs::EventCode::kChaosReadOk, key, 0);  // absent
    } else {
      ++stats_.verified_lost;
      Emit(obs::EventCode::kChaosReadLost, key, 0);
    }
  }
}

}  // namespace slice::chaos
