#include "src/chaos/scenario.h"

#include <algorithm>
#include <cmath>

namespace slice::chaos {
namespace {

// noisy_neighbor's aggressor: a second-client tenant hammering Zipf-skewed
// lookups of the victim's file names, so one tenant's demand concentrates on
// a few dir slots while the victim's writes fight the gray disks. Paced by a
// background timer (the scenario's RunUntilIdle must still drain) until
// `stop_at`; the shared_ptr returned by Arm keeps it alive for the run.
class Aggressor {
 public:
  Aggressor(Ensemble& ensemble, size_t client_index, uint32_t tenant, size_t num_names,
            double zipf_s, SimTime interval, SimTime stop_at, uint64_t seed)
      : queue_(ensemble.queue()),
        client_(ensemble.client_host(client_index), ensemble.queue(),
                ensemble.virtual_server()),
        root_(ensemble.root()),
        rng_(seed),
        interval_(interval),
        stop_at_(stop_at) {
    client_.rpc().set_tenant(tenant);
    double total = 0;
    cdf_.reserve(num_names);
    for (size_t i = 0; i < num_names; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
      cdf_.push_back(total);
    }
    for (double& w : cdf_) {
      w /= total;
    }
  }

  static std::shared_ptr<void> Arm(std::shared_ptr<Aggressor> self) {
    Schedule(self);
    return self;
  }

 private:
  static void Schedule(const std::shared_ptr<Aggressor>& self) {
    self->queue_.ScheduleBackgroundAfter(self->interval_, [self] {
      if (self->queue_.now() >= self->stop_at_) {
        return;
      }
      const std::string name = "chaos" + std::to_string(self->Pick());
      self->client_.Lookup(self->root_, name, [](Status, const LookupRes&) {});
      Schedule(self);
    });
  }

  size_t Pick() {
    const double u = rng_.NextDouble();
    for (size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) {
        return i;
      }
    }
    return cdf_.empty() ? 0 : cdf_.size() - 1;
  }

  EventQueue& queue_;
  NfsClient client_;
  FileHandle root_;
  Rng rng_;
  std::vector<double> cdf_;
  SimTime interval_;
  SimTime stop_at_;
};

// Common substrate for every scenario: 2 dir servers (so one can adopt the
// other), mirrored striping across 4 storage nodes, name-hashed namespace
// (every dir site owns live state worth failing over), event log on, metrics
// and tracing off so the flight dump stays integer-only and its content hash
// is portable across libm implementations.
// No small-file servers: every byte of file data takes the mirrored-striping
// path across the storage nodes, which is what the fault plans target.
EnsembleConfig BaseConfig() {
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 0;
  config.num_storage_nodes = 4;
  config.num_coordinators = 1;
  config.num_clients = 1;
  config.name_policy = NamePolicy::kNameHashing;
  config.default_replication = 2;
  config.eventlog = {.enabled = true};
  config.chaos.enabled = true;
  return config;
}

}  // namespace

std::vector<Scenario> ScenarioMatrix() {
  std::vector<Scenario> matrix;

  {  // Full partition of dir 1 + storage 3; heal and watch every chain close.
    Scenario s;
    s.name = "partition_heal";
    s.description =
        "dir1+storage3 partitioned for 900ms mid-workload; adoption, handoff "
        "and mirror resync must all complete after the heal";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kPartition,
         .at = FromMillis(600),
         .duration = FromMillis(900),
         .targets = {Dir(1), Storage(3)}},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.expect_adoption = true;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Heavy one-directional loss toward a storage node. Its own outbound
     // packets (heartbeats, replies) still flow, so the detector must stay
     // quiet and RPC retransmission must absorb the rest.
    Scenario s;
    s.name = "asymmetric_loss";
    s.description =
        "45% loss toward storage2 only; heartbeats keep flowing, so no node "
        "may be declared dead";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kLoss,
         .at = FromMillis(500),
         .duration = FromMillis(900),
         .targets = {Storage(2)},
         .asymmetric = true,
         .rate = 0.45},
    };
    s.workload.shape = WorkloadShape::kZipfHotspot;
    s.bounds.expect_no_deaths = true;
    matrix.push_back(std::move(s));
  }

  {  // Gilbert-Elliott burst loss on every link in the ensemble.
    Scenario s;
    s.name = "burst_loss";
    s.description =
        "correlated burst loss (85% while bad) on all links; false suspicions "
        "are allowed but every failure episode must close";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kBurstLoss,
         .at = FromMillis(500),
         .duration = FromMillis(1000),
         .targets = {},  // empty = every link in the ensemble
         .rate = 0.85,
         .p_enter = 0.03,
         .p_exit = 0.30},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Gray failure: storage1 gets 20x-slow disks and a laggy NIC, but stays
     // alive. Slow-but-alive must not trip the failure detector.
    Scenario s;
    s.name = "gray_disk";
    s.description =
        "storage1 disks 20x slower plus 300us NIC lag for 1.2s; "
        "slow-but-alive must not be declared dead";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kGrayDisk,
         .at = FromMillis(500),
         .duration = FromMillis(1200),
         .targets = {Storage(1)},
         .multiplier = 20.0},
        {.kind = FaultKind::kGrayNic,
         .at = FromMillis(500),
         .duration = FromMillis(1200),
         .targets = {Storage(1)},
         .extra_latency = FromMicros(300)},
    };
    s.workload.shape = WorkloadShape::kZipfHotspot;
    s.bounds.expect_no_deaths = true;
    matrix.push_back(std::move(s));
  }

  {  // Correlated crashes: two storage nodes and the coordinator die in one
     // window. Acked mirrored writes must survive the double failure.
    Scenario s;
    s.name = "correlated_crash";
    s.description =
        "storage1+storage2 crash together (coordinator too); all restart and "
        "resync; every acked write must survive";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(700),
         .duration = FromMillis(900),
         .targets = {Storage(1), Storage(2)}},
        {.kind = FaultKind::kCrash,
         .at = FromMillis(800),
         .duration = FromMillis(500),
         .targets = {Coord(0)}},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Restart storm: the correlated-crash pair dies twice in one run. Each
     // restart must come up with per-object soft state (prefetch offsets,
     // pending-ready blocks, metadata write-behind debt, disk backlog) fully
     // cleared — state leaking across the first restart would skew the
     // second window's replay and surface as a flight-hash change.
    Scenario s;
    s.name = "correlated_crash_restart_storm";
    s.description =
        "storage1+storage2 crash twice back-to-back; restarts must not carry "
        "stale per-object state between windows";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(700),
         .duration = FromMillis(600),
         .targets = {Storage(1), Storage(2)}},
        {.kind = FaultKind::kCrash,
         .at = FromMillis(1800),
         .duration = FromMillis(600),
         .targets = {Storage(1), Storage(2)}},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(4);
    matrix.push_back(std::move(s));
  }

  {  // Clock skew: storage3's heartbeat clock runs 14x slow — past the
     // detector timeout, so an alive node flaps dead/rejoined. Dir1 gets a
     // milder 4x skew that only grazes the suspicion window.
    Scenario s;
    s.name = "skewed_heartbeats";
    s.description =
        "storage3 heartbeats 14x slow (declared dead while alive, then "
        "flaps); dir1 4x slow (suspicion only); epochs must stay monotone";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kClockSkew,
         .at = FromMillis(600),
         .duration = FromMillis(1200),
         .targets = {Storage(3)},
         .multiplier = 14.0},
        {.kind = FaultKind::kClockSkew,
         .at = FromMillis(600),
         .duration = FromMillis(1200),
         .targets = {Dir(1)},
         .multiplier = 4.0},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(3);
    s.settle = FromMillis(2500);  // last slow beat can land ~700ms post-heal
    matrix.push_back(std::move(s));
  }

  {  // A dir server crash/restart cycle, twice, under metadata churn: two
     // full dead → adopt → rejoin → handoff rounds with no double-adopt.
    Scenario s;
    s.name = "flapping_node";
    s.description =
        "dir1 crashes and restarts twice under create/rename/remove churn; "
        "two adoption+handoff rounds, names must land correctly";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(600),
         .duration = FromMillis(700),
         .targets = {Dir(1)}},
        {.kind = FaultKind::kCrash,
         .at = FromMillis(2400),
         .duration = FromMillis(700),
         .targets = {Dir(1)}},
    };
    s.workload.shape = WorkloadShape::kMetadataStorm;
    s.workload.ops = 320;  // churn long enough to straddle both crash windows
    s.bounds.expect_adoption = true;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // In-proxy cache coherence under partition + a hotspot re-stripe: the
     // only client is cut off across an epoch change (its µproxy keeps
     // serving cached lookups at its installed epoch), dir1 dies and its
     // slots dead-walk onto dir2, so once the client heals and churn
     // resumes, the manager's hotspot detector must re-stripe dir2's load
     // away — and every cache hit must carry the host's installed epoch.
    Scenario s;
    s.name = "stale_cache_partition";
    s.description =
        "client0 partitioned across an epoch bump while dir1 is down; "
        "post-heal churn must trigger a hotspot re-stripe and no op may be "
        "served from a stale cached mapping";
    s.config = BaseConfig();
    s.config.num_dir_servers = 3;  // dir1's slots walk onto dir2: imbalance
    s.config.proxy_cache = true;
    s.config.rendezvous_routing = true;
    s.config.metrics = {.enabled = true};  // hotspot detector's input plane
    s.config.mgmt.hotspot_enabled = true;
    s.config.mgmt.hotspot_interval = FromMillis(250);
    s.config.mgmt.hotspot_min_ops = 8;
    s.config.mgmt.hotspot_imbalance = 1.5;
    s.config.mgmt.hotspot_max_slots = 4;
    s.config.mgmt.hotspot_max_episodes = 2;
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(360),
         .duration = FromMillis(1640),
         .targets = {Dir(1)}},
        {.kind = FaultKind::kPartition,
         .at = FromMillis(600),
         .duration = FromMillis(900),
         .targets = {Client(0)}},
    };
    s.workload.shape = WorkloadShape::kMetadataStorm;
    s.workload.ops = 320;  // enough post-heal churn to trip the detector
    s.bounds.expect_adoption = true;
    s.bounds.expect_rebalance = true;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Multi-tenant QoS: a noisy tenant plus gray disks. Tenant 2 (client 1)
     // hammers Zipf-skewed lookups of the victim's files while storage 0+1
     // run 30x-slow disks, so tenant 1's FileSync writes blow the 25ms
     // objective. Tenant 1's slo_burn must fire while the disks are gray,
     // carry a resolvable worst-tail exemplar trace id, and clear after the
     // heal. Per-slot dir metrics + the per-slot hotspot mode are on, so the
     // flight dump also records which tenant heated which slot.
    Scenario s;
    s.name = "noisy_neighbor";
    s.description =
        "tenant2 Zipf-lookup storm + storage0/1 disks 30x slower for 600ms; "
        "tenant1's slo_burn must fire with a resolvable exemplar trace and "
        "clear after the heal";
    s.config = BaseConfig();
    s.config.num_dir_servers = 3;
    s.config.num_clients = 2;
    s.config.trace = {.enabled = true};  // exemplars must resolve to traces
    s.config.metrics = {.enabled = true};
    s.config.num_tenants = 2;
    s.config.slo.enabled = true;
    s.config.slo.latency_threshold = FromMillis(25);
    s.config.slo.error_budget_ppm = 50000;  // 5%: chaos-scaled objective
    s.config.slo.fast_windows = 3;          // 300ms / 800ms on the 100ms scrape
    s.config.slo.slow_windows = 8;
    s.config.slo.min_ops = 4;
    s.config.dir_slot_metrics = true;
    s.config.mgmt.hotspot_enabled = true;
    s.config.mgmt.hotspot_per_slot = true;
    s.config.mgmt.hotspot_interval = FromMillis(250);
    s.config.mgmt.hotspot_min_ops = 32;
    s.config.mgmt.hotspot_imbalance = 1.5;
    s.config.chaos.faults = {
        {.kind = FaultKind::kGrayDisk,
         .at = FromMillis(400),
         .duration = FromMillis(600),
         .targets = {Storage(0), Storage(1)},
         .multiplier = 30.0},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.workload.tenant = 1;
    s.workload.ops = 260;  // 8ms pace: runs ~1.1s past the heal for the clear
    s.workload.write_fraction = 0.6;
    s.bounds.expect_no_deaths = true;
    s.background = [](Ensemble& ensemble) {
      return Aggressor::Arm(std::make_shared<Aggressor>(
          ensemble, /*client_index=*/1, /*tenant=*/2, /*num_names=*/12, /*zipf_s=*/1.3,
          /*interval=*/FromMillis(2), /*stop_at=*/FromMillis(2200), /*seed=*/0xa66));
    };
    matrix.push_back(std::move(s));
  }

  return matrix;
}

const Scenario* FindScenario(const std::vector<Scenario>& matrix, const std::string& name) {
  for (const Scenario& s : matrix) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

ScenarioResult RunScenario(const Scenario& scenario) {
  EventQueue queue;
  Ensemble ensemble(queue, scenario.config);
  obs::LogEvent(ensemble.eventlog(), kChaosControllerAddr, queue.now(), obs::EventSev::kInfo,
                obs::EventCat::kChaos, obs::EventCode::kScenarioStart, /*trace_id=*/0,
                scenario.name.c_str(),
                {{"faults", static_cast<int64_t>(scenario.config.chaos.faults.size())},
                 {"ops", static_cast<int64_t>(scenario.workload.ops)}});

  ChaosWorkload workload(ensemble, scenario.workload);
  workload.Setup();
  std::shared_ptr<void> background;
  if (scenario.background) {
    background = scenario.background(ensemble);
  }
  workload.Run();

  // Run past the last heal plus the settle margin so rejoin sweeps, deferred
  // handoffs and mirror resyncs complete before verification. Faults with
  // duration 0 never heal and contribute only their injection time.
  SimTime horizon = queue.now();
  for (const FaultSpec& fault : scenario.config.chaos.faults) {
    horizon = std::max(horizon, fault.at + fault.duration);
  }
  queue.RunUntil(horizon + scenario.settle);
  queue.RunUntilIdle();

  workload.Verify();
  queue.RunUntilIdle();

  obs::LogEvent(ensemble.eventlog(), kChaosControllerAddr, queue.now(), obs::EventSev::kInfo,
                obs::EventCat::kChaos, obs::EventCode::kScenarioEnd, /*trace_id=*/0,
                scenario.name.c_str(),
                {{"ok", static_cast<int64_t>(workload.stats().verified_lost == 0 ? 1 : 0)}});

  ScenarioResult result;
  result.stats = workload.stats();
  result.report = CheckInvariants(ensemble.eventlog()->Collect(), scenario.bounds);
  result.flight_json = ensemble.ExportFlightJson(("scenario:" + scenario.name).c_str());
  result.flight_hash = obs::FlightContentHash(result.flight_json);
  result.finished_at = queue.now();
  return result;
}

}  // namespace slice::chaos
