#include "src/chaos/scenario.h"

#include <algorithm>

namespace slice::chaos {
namespace {

// Common substrate for every scenario: 2 dir servers (so one can adopt the
// other), mirrored striping across 4 storage nodes, name-hashed namespace
// (every dir site owns live state worth failing over), event log on, metrics
// and tracing off so the flight dump stays integer-only and its content hash
// is portable across libm implementations.
// No small-file servers: every byte of file data takes the mirrored-striping
// path across the storage nodes, which is what the fault plans target.
EnsembleConfig BaseConfig() {
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 0;
  config.num_storage_nodes = 4;
  config.num_coordinators = 1;
  config.num_clients = 1;
  config.name_policy = NamePolicy::kNameHashing;
  config.default_replication = 2;
  config.eventlog = {.enabled = true};
  config.chaos.enabled = true;
  return config;
}

}  // namespace

std::vector<Scenario> ScenarioMatrix() {
  std::vector<Scenario> matrix;

  {  // Full partition of dir 1 + storage 3; heal and watch every chain close.
    Scenario s;
    s.name = "partition_heal";
    s.description =
        "dir1+storage3 partitioned for 900ms mid-workload; adoption, handoff "
        "and mirror resync must all complete after the heal";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kPartition,
         .at = FromMillis(600),
         .duration = FromMillis(900),
         .targets = {Dir(1), Storage(3)}},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.expect_adoption = true;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Heavy one-directional loss toward a storage node. Its own outbound
     // packets (heartbeats, replies) still flow, so the detector must stay
     // quiet and RPC retransmission must absorb the rest.
    Scenario s;
    s.name = "asymmetric_loss";
    s.description =
        "45% loss toward storage2 only; heartbeats keep flowing, so no node "
        "may be declared dead";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kLoss,
         .at = FromMillis(500),
         .duration = FromMillis(900),
         .targets = {Storage(2)},
         .asymmetric = true,
         .rate = 0.45},
    };
    s.workload.shape = WorkloadShape::kZipfHotspot;
    s.bounds.expect_no_deaths = true;
    matrix.push_back(std::move(s));
  }

  {  // Gilbert-Elliott burst loss on every link in the ensemble.
    Scenario s;
    s.name = "burst_loss";
    s.description =
        "correlated burst loss (85% while bad) on all links; false suspicions "
        "are allowed but every failure episode must close";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kBurstLoss,
         .at = FromMillis(500),
         .duration = FromMillis(1000),
         .targets = {},  // empty = every link in the ensemble
         .rate = 0.85,
         .p_enter = 0.03,
         .p_exit = 0.30},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Gray failure: storage1 gets 20x-slow disks and a laggy NIC, but stays
     // alive. Slow-but-alive must not trip the failure detector.
    Scenario s;
    s.name = "gray_disk";
    s.description =
        "storage1 disks 20x slower plus 300us NIC lag for 1.2s; "
        "slow-but-alive must not be declared dead";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kGrayDisk,
         .at = FromMillis(500),
         .duration = FromMillis(1200),
         .targets = {Storage(1)},
         .multiplier = 20.0},
        {.kind = FaultKind::kGrayNic,
         .at = FromMillis(500),
         .duration = FromMillis(1200),
         .targets = {Storage(1)},
         .extra_latency = FromMicros(300)},
    };
    s.workload.shape = WorkloadShape::kZipfHotspot;
    s.bounds.expect_no_deaths = true;
    matrix.push_back(std::move(s));
  }

  {  // Correlated crashes: two storage nodes and the coordinator die in one
     // window. Acked mirrored writes must survive the double failure.
    Scenario s;
    s.name = "correlated_crash";
    s.description =
        "storage1+storage2 crash together (coordinator too); all restart and "
        "resync; every acked write must survive";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(700),
         .duration = FromMillis(900),
         .targets = {Storage(1), Storage(2)}},
        {.kind = FaultKind::kCrash,
         .at = FromMillis(800),
         .duration = FromMillis(500),
         .targets = {Coord(0)}},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // Clock skew: storage3's heartbeat clock runs 14x slow — past the
     // detector timeout, so an alive node flaps dead/rejoined. Dir1 gets a
     // milder 4x skew that only grazes the suspicion window.
    Scenario s;
    s.name = "skewed_heartbeats";
    s.description =
        "storage3 heartbeats 14x slow (declared dead while alive, then "
        "flaps); dir1 4x slow (suspicion only); epochs must stay monotone";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kClockSkew,
         .at = FromMillis(600),
         .duration = FromMillis(1200),
         .targets = {Storage(3)},
         .multiplier = 14.0},
        {.kind = FaultKind::kClockSkew,
         .at = FromMillis(600),
         .duration = FromMillis(1200),
         .targets = {Dir(1)},
         .multiplier = 4.0},
    };
    s.workload.shape = WorkloadShape::kWriteVerify;
    s.bounds.max_outage = FromSeconds(3);
    s.settle = FromMillis(2500);  // last slow beat can land ~700ms post-heal
    matrix.push_back(std::move(s));
  }

  {  // A dir server crash/restart cycle, twice, under metadata churn: two
     // full dead → adopt → rejoin → handoff rounds with no double-adopt.
    Scenario s;
    s.name = "flapping_node";
    s.description =
        "dir1 crashes and restarts twice under create/rename/remove churn; "
        "two adoption+handoff rounds, names must land correctly";
    s.config = BaseConfig();
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(600),
         .duration = FromMillis(700),
         .targets = {Dir(1)}},
        {.kind = FaultKind::kCrash,
         .at = FromMillis(2400),
         .duration = FromMillis(700),
         .targets = {Dir(1)}},
    };
    s.workload.shape = WorkloadShape::kMetadataStorm;
    s.workload.ops = 320;  // churn long enough to straddle both crash windows
    s.bounds.expect_adoption = true;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  {  // In-proxy cache coherence under partition + a hotspot re-stripe: the
     // only client is cut off across an epoch change (its µproxy keeps
     // serving cached lookups at its installed epoch), dir1 dies and its
     // slots dead-walk onto dir2, so once the client heals and churn
     // resumes, the manager's hotspot detector must re-stripe dir2's load
     // away — and every cache hit must carry the host's installed epoch.
    Scenario s;
    s.name = "stale_cache_partition";
    s.description =
        "client0 partitioned across an epoch bump while dir1 is down; "
        "post-heal churn must trigger a hotspot re-stripe and no op may be "
        "served from a stale cached mapping";
    s.config = BaseConfig();
    s.config.num_dir_servers = 3;  // dir1's slots walk onto dir2: imbalance
    s.config.proxy_cache = true;
    s.config.rendezvous_routing = true;
    s.config.metrics = {.enabled = true};  // hotspot detector's input plane
    s.config.mgmt.hotspot_enabled = true;
    s.config.mgmt.hotspot_interval = FromMillis(250);
    s.config.mgmt.hotspot_min_ops = 8;
    s.config.mgmt.hotspot_imbalance = 1.5;
    s.config.mgmt.hotspot_max_slots = 4;
    s.config.mgmt.hotspot_max_episodes = 2;
    s.config.chaos.faults = {
        {.kind = FaultKind::kCrash,
         .at = FromMillis(360),
         .duration = FromMillis(1640),
         .targets = {Dir(1)}},
        {.kind = FaultKind::kPartition,
         .at = FromMillis(600),
         .duration = FromMillis(900),
         .targets = {Client(0)}},
    };
    s.workload.shape = WorkloadShape::kMetadataStorm;
    s.workload.ops = 320;  // enough post-heal churn to trip the detector
    s.bounds.expect_adoption = true;
    s.bounds.expect_rebalance = true;
    s.bounds.max_outage = FromSeconds(3);
    matrix.push_back(std::move(s));
  }

  return matrix;
}

const Scenario* FindScenario(const std::vector<Scenario>& matrix, const std::string& name) {
  for (const Scenario& s : matrix) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

ScenarioResult RunScenario(const Scenario& scenario) {
  EventQueue queue;
  Ensemble ensemble(queue, scenario.config);
  obs::LogEvent(ensemble.eventlog(), kChaosControllerAddr, queue.now(), obs::EventSev::kInfo,
                obs::EventCat::kChaos, obs::EventCode::kScenarioStart, /*trace_id=*/0,
                scenario.name.c_str(),
                {{"faults", static_cast<int64_t>(scenario.config.chaos.faults.size())},
                 {"ops", static_cast<int64_t>(scenario.workload.ops)}});

  ChaosWorkload workload(ensemble, scenario.workload);
  workload.Setup();
  workload.Run();

  // Run past the last heal plus the settle margin so rejoin sweeps, deferred
  // handoffs and mirror resyncs complete before verification. Faults with
  // duration 0 never heal and contribute only their injection time.
  SimTime horizon = queue.now();
  for (const FaultSpec& fault : scenario.config.chaos.faults) {
    horizon = std::max(horizon, fault.at + fault.duration);
  }
  queue.RunUntil(horizon + scenario.settle);
  queue.RunUntilIdle();

  workload.Verify();
  queue.RunUntilIdle();

  obs::LogEvent(ensemble.eventlog(), kChaosControllerAddr, queue.now(), obs::EventSev::kInfo,
                obs::EventCat::kChaos, obs::EventCode::kScenarioEnd, /*trace_id=*/0,
                scenario.name.c_str(),
                {{"ok", static_cast<int64_t>(workload.stats().verified_lost == 0 ? 1 : 0)}});

  ScenarioResult result;
  result.stats = workload.stats();
  result.report = CheckInvariants(ensemble.eventlog()->Collect(), scenario.bounds);
  result.flight_json = ensemble.ExportFlightJson(("scenario:" + scenario.name).c_str());
  result.flight_hash = obs::FlightContentHash(result.flight_json);
  result.finished_at = queue.now();
  return result;
}

}  // namespace slice::chaos
