// Deterministic chaos engine: primitive fault descriptions.
//
// A chaos run is a *plan*, not a random walk: every fault is a FaultSpec with
// an explicit injection time, duration, and target list, and the whole plan is
// scheduled up front as DES events (ChaosEngine::Arm). The only randomness is
// inside the primitives themselves (per-packet loss draws, Gilbert-Elliott
// state transitions) and it comes from dedicated seeded RNG streams, so the
// same ChaosConfig against the same workload seed replays byte-identically —
// including the flight-recorder dump, which is what the scenario matrix pins
// golden hashes against (src/chaos/scenario.h).
//
// Primitives compose: a scenario is just a list of FaultSpecs whose windows
// overlap however it likes (partition a dir server while a storage node's
// disks go gray, then crash the coordinator mid-heal).
#ifndef SLICE_CHAOS_CHAOS_H_
#define SLICE_CHAOS_CHAOS_H_

#include <cstdint>
#include <vector>

#include "src/mgmt/mgmt_proto.h"
#include "src/sim/event_queue.h"

namespace slice::chaos {

// NetAddr the engine records its fault_inject/fault_clear events against
// (10.0.5.254 — the chaos controller "host"; nothing is attached there).
constexpr uint32_t kChaosControllerAddr = 0x0a0005fe;

enum class FaultKind : uint8_t {
  // Link partition between `targets` and every other host (clients, manager
  // and all servers). Symmetric by default; `asymmetric` blocks only traffic
  // *toward* the targets, leaving their outbound path (heartbeats!) intact.
  kPartition = 0,
  // I.i.d. packet loss at `rate` on every link between `targets` and the
  // rest (both directions unless `asymmetric`, which shapes only toward the
  // targets). End-to-end RPC retransmission must mask it (paper §2.1).
  kLoss = 1,
  // Correlated (bursty) loss on the same link set: a per-packet
  // Gilbert-Elliott chain enters a bad state with `p_enter`, leaves with
  // `p_exit`, and drops at `rate` while bad. Empty `targets` = every link
  // in the ensemble.
  kBurstLoss = 2,
  // Gray disk: the targets' disk arrays serve every I/O `multiplier`×
  // slower. Slow-but-alive — heartbeats keep flowing, so the detector must
  // not fire; requests just back up behind the arms.
  kGrayDisk = 3,
  // Gray NIC: every packet to or from the targets pays `extra_latency`.
  kGrayNic = 4,
  // Crash the targets at `at` (host drops off the network, volatile state
  // lost) and restart them `duration` later. duration == 0 = no restart.
  kCrash = 5,
  // Clock skew: the targets' heartbeat agents tick `multiplier`× slower.
  // Past the detector timeout an alive node is declared dead; milder skews
  // keep it flapping through the suspicion window.
  kClockSkew = 6,
};

const char* FaultKindName(FaultKind kind);

// A node in ensemble coordinates (class + index), mirroring mgmt NodeIds.
struct NodeRef {
  NodeClass cls = NodeClass::kStorage;
  uint32_t index = 0;
};

inline NodeRef Storage(uint32_t i) { return {NodeClass::kStorage, i}; }
inline NodeRef Dir(uint32_t i) { return {NodeClass::kDir, i}; }
inline NodeRef Sfs(uint32_t i) { return {NodeClass::kSfs, i}; }
inline NodeRef Coord(uint32_t i) { return {NodeClass::kCoord, i}; }
inline NodeRef Client(uint32_t i) { return {NodeClass::kClient, i}; }

struct FaultSpec {
  FaultKind kind = FaultKind::kPartition;
  SimTime at = 0;        // injection time
  SimTime duration = 0;  // healed at `at + duration`; 0 = never healed
  std::vector<NodeRef> targets;
  bool asymmetric = false;    // kPartition / kLoss: shape only toward targets
  double rate = 0.0;          // kLoss / kBurstLoss drop probability
  double p_enter = 0.02;      // kBurstLoss: good→bad per packet
  double p_exit = 0.25;       // kBurstLoss: bad→good per packet
  double multiplier = 1.0;    // kGrayDisk / kClockSkew
  SimTime extra_latency = 0;  // kGrayNic
};

struct ChaosConfig {
  bool enabled = false;
  // Seeds the network's chaos RNG stream indirectly via the ensemble's
  // loss_seed; kept here so scenarios can vary stochastic faults without
  // touching the workload seed.
  uint64_t seed = 0x51ce0c4a05;
  std::vector<FaultSpec> faults;
};

}  // namespace slice::chaos

#endif  // SLICE_CHAOS_CHAOS_H_
