// ChaosEngine: schedules a ChaosConfig's fault plan as DES events and applies
// each primitive through narrow hooks into the layers that implement it —
// link shaping in src/net, disk multipliers in src/sim//src/storage, crash /
// restart and heartbeat skew in src/mgmt. The engine itself holds no
// component pointers beyond the hooks, so it has no dependency on the
// ensemble assembly (src/slice wires the hooks up; see
// EnsembleConfig::chaos).
//
// Every application and heal is recorded in the event log (fault_inject /
// fault_clear on the chaos controller pseudo-host), which is what makes
// chaos runs auditable: the invariant checker (src/chaos/invariants.h) and
// the flight dump both see exactly when each fault was live.
#ifndef SLICE_CHAOS_CHAOS_ENGINE_H_
#define SLICE_CHAOS_CHAOS_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/net/network.h"
#include "src/obs/eventlog.h"
#include "src/sim/event_queue.h"

namespace slice::chaos {

// The surface the engine needs from the deployment. All hooks must be valid
// for the engine's lifetime; `log` may be null (chaos still works, just
// unrecorded).
struct ChaosHooks {
  EventQueue* queue = nullptr;
  Network* net = nullptr;
  obs::EventLog* log = nullptr;
  // Crash / restart a node (RpcServerNode::Fail / Restart semantics).
  std::function<void(NodeClass, uint32_t)> fail_node;
  std::function<void(NodeClass, uint32_t)> restart_node;
  // Gray disk: scale storage node i's disk service times.
  std::function<void(uint32_t, double)> set_storage_disk_multiplier;
  // Clock skew: scale a node's heartbeat interval.
  std::function<void(NodeClass, uint32_t, double)> set_heartbeat_scale;
  // Ensemble coordinates → host address (0 when the node doesn't exist).
  std::function<uint32_t(NodeClass, uint32_t)> addr_of;
  // Every attached host (servers, manager, clients): the "rest of the
  // world" a partition separates the targets from.
  std::vector<uint32_t> all_hosts;
};

class ChaosEngine {
 public:
  ChaosEngine(ChaosHooks hooks, ChaosConfig config);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // Schedules every fault's apply (and, for finite durations, heal) as
  // background DES events. Idempotent-hostile: call once.
  void Arm();

  size_t faults_armed() const { return config_.faults.size(); }
  uint64_t injections() const { return injections_; }
  uint64_t clears() const { return clears_; }

 private:
  void Apply(size_t fault_index);
  void Heal(size_t fault_index);
  // Links between each target and every non-target host, honoring
  // spec.asymmetric; invokes fn(src, dst) per directed link to shape.
  void ForEachShapedLink(const FaultSpec& spec,
                         const std::function<void(uint32_t, uint32_t)>& fn);
  void LogFault(const FaultSpec& spec, size_t fault_index, bool inject);

  ChaosHooks hooks_;
  ChaosConfig config_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  uint64_t injections_ = 0;
  uint64_t clears_ = 0;
};

}  // namespace slice::chaos

#endif  // SLICE_CHAOS_CHAOS_ENGINE_H_
