#include "src/chaos/invariants.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>

namespace slice::chaos {
namespace {

std::optional<int64_t> Arg(const obs::Event& ev, const char* key) {
  for (uint8_t i = 0; i < ev.nargs; ++i) {
    if (std::strncmp(ev.args[i].key, key, obs::kEventArgKeyCap) == 0) {
      return ev.args[i].value;
    }
  }
  return std::nullopt;
}

std::string TimeStr(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(t) / 1e9);
  return buf;
}

// (class-detail, node-index) identity of a mgmt membership event.
std::string NodeKey(const obs::Event& ev) {
  const auto node = Arg(ev, "node");
  return std::string(ev.detail_view()) + "/" + std::to_string(node.value_or(-1));
}

}  // namespace

InvariantReport CheckInvariants(const std::vector<obs::Event>& events,
                                const InvariantBounds& bounds) {
  InvariantReport rep;

  struct WriteState {
    int64_t sum = 0;
    SimTime acked_at = 0;
    bool verified = false;
  };
  std::map<int64_t, WriteState> writes;  // journal key → latest acked state

  struct DeathState {
    SimTime dead_at = 0;
    bool rejoined = false;
  };
  std::map<std::string, DeathState> deaths;  // open (unrejoined) episodes

  struct SiteState {
    bool adopted = false;     // adopt_done observed, not yet handed off
    bool adopting = false;    // adopt_begin observed, adopt_done pending
    SimTime begun_at = 0;
  };
  std::map<int64_t, SiteState> sites;
  std::map<int64_t, SimTime> dir_dead_at;  // dir index → node_dead time (open)

  std::map<uint32_t, uint64_t> install_epochs;  // per-host last table epoch
  uint64_t last_bump_epoch = 0;
  bool saw_bump = false;

  std::map<int64_t, SimTime> open_faults;  // fault index → inject time

  std::map<uint64_t, SimTime> open_rebalances;  // episode trace id → begin time

  for (const obs::Event& ev : events) {
    switch (ev.code) {
      case obs::EventCode::kChaosWriteAcked: {
        const auto key = Arg(ev, "key");
        const auto sum = Arg(ev, "sum");
        if (key && sum) {
          ++rep.acked_writes;
          writes[*key] = WriteState{*sum, ev.at, false};
        }
        break;
      }
      case obs::EventCode::kChaosReadOk: {
        const auto key = Arg(ev, "key");
        const auto sum = Arg(ev, "sum");
        if (!key || !sum) {
          break;
        }
        ++rep.verified_ok;
        auto it = writes.find(*key);
        if (it == writes.end()) {
          break;  // read of an unjournaled key; not a durability claim
        }
        it->second.verified = true;
        if (it->second.sum != *sum) {
          rep.violations.push_back("acked write torn: key=" + std::to_string(*key) +
                                   " acked sum=" + std::to_string(it->second.sum) +
                                   " read sum=" + std::to_string(*sum) + " at " +
                                   TimeStr(ev.at));
        }
        break;
      }
      case obs::EventCode::kChaosReadLost: {
        const auto key = Arg(ev, "key");
        ++rep.verified_lost;
        if (key) {
          auto it = writes.find(*key);
          if (it != writes.end()) {
            it->second.verified = true;
          }
        }
        rep.violations.push_back(
            "acked write lost: key=" + std::to_string(key.value_or(-1)) + " (acked at " +
            (key && writes.count(*key) ? TimeStr(writes[*key].acked_at) : "?") +
            ", lost at " + TimeStr(ev.at) + ")");
        break;
      }
      case obs::EventCode::kNodeDead: {
        ++rep.deaths;
        const std::string key = NodeKey(ev);
        if (bounds.expect_no_deaths) {
          rep.violations.push_back("unexpected node_dead for " + key + " at " + TimeStr(ev.at) +
                                   " (scenario only degrades; detector false positive)");
        }
        deaths[key] = DeathState{ev.at, false};
        if (ev.detail_view() == "dir") {
          if (const auto node = Arg(ev, "node")) {
            dir_dead_at[*node] = ev.at;
          }
        }
        break;
      }
      case obs::EventCode::kNodeRejoin: {
        ++rep.rejoins;
        const std::string key = NodeKey(ev);
        auto it = deaths.find(key);
        if (it != deaths.end()) {
          const SimTime outage = ev.at - it->second.dead_at;
          if (outage > rep.worst_outage) {
            rep.worst_outage = outage;
          }
          if (bounds.max_outage > 0 && outage > bounds.max_outage) {
            rep.violations.push_back("unavailability bound blown for " + key + ": dead " +
                                     TimeStr(outage) + " > max " +
                                     TimeStr(bounds.max_outage));
          }
          deaths.erase(it);
        }
        if (ev.detail_view() == "dir") {
          if (const auto node = Arg(ev, "node")) {
            dir_dead_at.erase(*node);
          }
        }
        break;
      }
      case obs::EventCode::kAdoptBegin: {
        ++rep.adoptions_begun;
        const auto site = Arg(ev, "site");
        if (!site) {
          break;
        }
        SiteState& st = sites[*site];
        if (st.adopted || st.adopting) {
          rep.violations.push_back("double adoption of site " + std::to_string(*site) +
                                   " at " + TimeStr(ev.at) +
                                   " (previous adoption not handed off)");
        }
        st.adopting = true;
        st.begun_at = ev.at;
        break;
      }
      case obs::EventCode::kAdoptDone: {
        ++rep.adoptions_done;
        const auto site = Arg(ev, "site");
        if (!site) {
          break;
        }
        SiteState& st = sites[*site];
        st.adopting = false;
        if (ev.detail_view() == "adopted") {
          st.adopted = true;
          // Service-restoration bound: the site was unavailable from its
          // owner's death until the adopter finished the WAL replay.
          auto dead_it = dir_dead_at.find(*site);
          if (dead_it != dir_dead_at.end() && bounds.max_adopt_delay > 0 &&
              ev.at - dead_it->second > bounds.max_adopt_delay) {
            rep.violations.push_back(
                "adoption of site " + std::to_string(*site) + " took " +
                TimeStr(ev.at - dead_it->second) + " > max " +
                TimeStr(bounds.max_adopt_delay));
          }
        } else {
          rep.violations.push_back("adoption of site " + std::to_string(*site) +
                                   " failed at " + TimeStr(ev.at));
        }
        break;
      }
      case obs::EventCode::kHandoff: {
        // Both the "scheduled" (ensemble) and completion (dir server)
        // records pass through here; only the completion flips state, and
        // it is the one emitted by the adopter that still holds the site.
        if (ev.detail_view() == "scheduled") {
          break;
        }
        ++rep.handoffs;
        const auto site = Arg(ev, "site");
        if (site) {
          sites[*site] = SiteState{};
        }
        break;
      }
      case obs::EventCode::kResync:
        ++rep.resyncs;
        break;
      case obs::EventCode::kEpochBump: {
        ++rep.epoch_bumps;
        const auto epoch = Arg(ev, "epoch");
        if (!epoch) {
          break;
        }
        if (saw_bump && static_cast<uint64_t>(*epoch) <= last_bump_epoch) {
          rep.violations.push_back("epoch not monotone: bump to " + std::to_string(*epoch) +
                                   " after " + std::to_string(last_bump_epoch) + " at " +
                                   TimeStr(ev.at));
        }
        saw_bump = true;
        last_bump_epoch = static_cast<uint64_t>(*epoch);
        if (last_bump_epoch > rep.max_epoch) {
          rep.max_epoch = last_bump_epoch;
        }
        break;
      }
      case obs::EventCode::kTableInstall: {
        const auto epoch = Arg(ev, "epoch");
        if (!epoch) {
          break;
        }
        uint64_t& have = install_epochs[ev.host];
        if (static_cast<uint64_t>(*epoch) < have) {
          rep.violations.push_back("table epoch regressed on host " +
                                   std::to_string(ev.host) + ": " + std::to_string(*epoch) +
                                   " after " + std::to_string(have) + " at " + TimeStr(ev.at));
        }
        have = static_cast<uint64_t>(*epoch);
        break;
      }
      case obs::EventCode::kRebalanceBegin: {
        ++rep.rebalances_begun;
        open_rebalances[ev.trace_id] = ev.at;
        break;
      }
      case obs::EventCode::kRebalanceCommit: {
        ++rep.rebalances_committed;
        if (open_rebalances.erase(ev.trace_id) == 0) {
          rep.violations.push_back("rebalance commit without matching begin (trace " +
                                   std::to_string(ev.trace_id) + ") at " + TimeStr(ev.at));
        }
        break;
      }
      case obs::EventCode::kCacheHit: {
        ++rep.cache_hits;
        // A µproxy must never answer from a mapping older than the tables it
        // has installed: the hit's stamped epoch is compared against the last
        // table_install recorded for the same host.
        const auto epoch = Arg(ev, "epoch");
        const auto have = install_epochs.find(ev.host);
        if (epoch && have != install_epochs.end() &&
            static_cast<uint64_t>(*epoch) != have->second) {
          rep.violations.push_back("cache hit from stale epoch " + std::to_string(*epoch) +
                                   " (host " + std::to_string(ev.host) + " installed " +
                                   std::to_string(have->second) + ") at " + TimeStr(ev.at));
        }
        break;
      }
      case obs::EventCode::kCacheFlush:
        ++rep.cache_flushes;
        break;
      case obs::EventCode::kFaultInject: {
        ++rep.faults_injected;
        if (const auto fault = Arg(ev, "fault")) {
          open_faults[*fault] = ev.at;
        }
        break;
      }
      case obs::EventCode::kFaultClear: {
        ++rep.faults_cleared;
        if (const auto fault = Arg(ev, "fault")) {
          open_faults.erase(*fault);
        }
        break;
      }
      default:
        break;
    }
  }

  // End-of-stream closure checks.
  if (bounds.require_verified) {
    for (const auto& [key, st] : writes) {
      if (!st.verified) {
        rep.violations.push_back("acked write never verified: key=" + std::to_string(key) +
                                 " (acked at " + TimeStr(st.acked_at) + ")");
      }
    }
  }
  if (bounds.expect_all_recover) {
    for (const auto& [key, st] : deaths) {
      rep.violations.push_back("failure episode never closed: " + key + " dead at " +
                               TimeStr(st.dead_at) + " with no rejoin");
    }
  }
  for (const auto& [site, st] : sites) {
    if (st.adopting) {
      rep.violations.push_back("adoption of site " + std::to_string(site) +
                               " begun at " + TimeStr(st.begun_at) + " never completed");
    }
  }
  if (bounds.expect_adoption && rep.adoptions_done == 0 && rep.deaths > 0) {
    rep.violations.push_back("expected at least one completed adoption; saw none");
  }
  if (bounds.expect_faults_heal) {
    for (const auto& [fault, at] : open_faults) {
      rep.violations.push_back("fault " + std::to_string(fault) + " injected at " +
                               TimeStr(at) + " never cleared");
    }
  }
  for (const auto& [trace, at] : open_rebalances) {
    rep.violations.push_back("rebalance episode (trace " + std::to_string(trace) +
                             ") begun at " + TimeStr(at) + " never committed");
  }
  if (bounds.expect_rebalance && rep.rebalances_committed == 0) {
    rep.violations.push_back("expected at least one committed rebalance; saw none");
  }

  return rep;
}

std::string InvariantReport::Summary() const {
  std::string out = "invariants: ";
  out += violations.empty() ? "OK" : (std::to_string(violations.size()) + " violation(s)");
  out += "; writes acked=" + std::to_string(acked_writes) +
         " verified_ok=" + std::to_string(verified_ok) +
         " lost=" + std::to_string(verified_lost);
  out += "; deaths=" + std::to_string(deaths) + " rejoins=" + std::to_string(rejoins);
  out += "; adoptions=" + std::to_string(adoptions_begun) + "/" +
         std::to_string(adoptions_done) + " handoffs=" + std::to_string(handoffs) +
         " resyncs=" + std::to_string(resyncs);
  out += "; epoch_bumps=" + std::to_string(epoch_bumps) +
         " max_epoch=" + std::to_string(max_epoch);
  if (rebalances_begun > 0 || cache_hits > 0 || cache_flushes > 0) {
    out += "; rebalances=" + std::to_string(rebalances_begun) + "/" +
           std::to_string(rebalances_committed) +
           " cache_hits=" + std::to_string(cache_hits) +
           " cache_flushes=" + std::to_string(cache_flushes);
  }
  out += "; faults=" + std::to_string(faults_injected) + "/" +
         std::to_string(faults_cleared);
  if (worst_outage > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(worst_outage) / 1e9);
    out += "; worst_outage=";
    out += buf;
  }
  for (const std::string& v : violations) {
    out += "\n  VIOLATION: " + v;
  }
  return out;
}

}  // namespace slice::chaos
