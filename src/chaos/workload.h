// Chaos workloads: paced, journaling clients that run *through* the fault
// windows and then prove what survived.
//
// Every mutation the server acknowledges is journaled (key → checksum) and
// recorded as a chaos_write_acked event; after the scenario heals, Verify()
// reads every journaled key back and records chaos_read_ok / chaos_read_lost
// with the observed checksum. The invariant checker
// (src/chaos/invariants.h) then has exactly the evidence it needs for the
// "no acked write lost" property — un-acked mutations (the fault window ate
// them) make no durability claim and are simply counted as errors.
//
// Three shapes:
//  * kWriteVerify   — mixed FileSync writes + reads over a small file set;
//                     the bread-and-butter durability workload.
//  * kZipfHotspot   — Zipf-distributed reads (s≈1.1) with a thin write
//                     stream, so one hot file dominates while faults land.
//  * kMetadataStorm — create / mkdir / rename / remove churn across
//                     name-hashed dir sites; journals *name presence*
//                     (checksum 1 = must exist, 0 = must not), verified by
//                     lookups — mutations must survive adoption + handoff.
#ifndef SLICE_CHAOS_WORKLOAD_H_
#define SLICE_CHAOS_WORKLOAD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/slice/ensemble.h"

namespace slice::chaos {

enum class WorkloadShape : uint8_t {
  kWriteVerify = 0,
  kZipfHotspot = 1,
  kMetadataStorm = 2,
};

const char* WorkloadShapeName(WorkloadShape shape);

struct ChaosWorkloadParams {
  WorkloadShape shape = WorkloadShape::kWriteVerify;
  uint64_t seed = 0x10ad;
  size_t num_files = 12;   // file population (kWriteVerify / kZipfHotspot)
  size_t ops = 200;        // paced operations in Run()
  SimTime op_interval = FromMillis(8);
  uint32_t write_bytes = 8192;
  double zipf_s = 1.1;     // kZipfHotspot skew exponent
  double write_fraction = 0.35;  // non-metadata shapes: P(op is a write)
  // Tenant/QoS plane: non-zero stamps every request's AUTH_SYS cred so the
  // µproxies attribute this workload's ops (noisy_neighbor's victim runs as
  // tenant 1). 0 = untenanted, byte-identical wire traffic.
  uint32_t tenant = 0;
  size_t client_index = 0;  // which ensemble client host to run on
};

struct ChaosWorkloadStats {
  size_t ops_issued = 0;
  size_t ops_ok = 0;
  size_t ops_failed = 0;    // kErrIo / jukebox-exhausted during the faults
  size_t journal_size = 0;  // distinct durability claims to verify
  size_t verified_ok = 0;
  size_t verified_lost = 0;
};

class ChaosWorkload {
 public:
  ChaosWorkload(Ensemble& ensemble, ChaosWorkloadParams params);

  // Creates the file population (before any fault fires).
  void Setup();
  // Issues params.ops paced operations; faults fire on their own schedule
  // while this advances sim time.
  void Run();
  // Reads back every journaled claim, emitting chaos_read_ok / _lost.
  void Verify();

  const ChaosWorkloadStats& stats() const { return stats_; }

 private:
  struct Claim {
    int64_t sum = 0;         // expected checksum (presence bit for names)
    uint32_t file = 0;       // file index (data shapes)
    uint64_t offset = 0;     // byte offset (data shapes)
    std::string name;        // directory entry (kMetadataStorm)
  };

  void RunDataOp();
  void RunMetadataOp(size_t op_index);
  void VerifyData();
  void VerifyNames();
  // Deterministic payload for (key, version); its FNV hash is the journal
  // checksum.
  Bytes Payload(int64_t key, uint32_t version) const;
  size_t ZipfPick();
  void Journal(int64_t key, const Claim& claim);
  void Emit(obs::EventCode code, int64_t key, int64_t sum);
  // Retries through transient jukebox answers (adoption, resync, reload),
  // advancing sim time between attempts.
  template <typename Fn>
  auto RetryJukebox(Fn&& op);

  Ensemble& ensemble_;
  ChaosWorkloadParams params_;
  EventQueue& queue_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
  Rng rng_;
  std::vector<FileHandle> files_;
  std::vector<double> zipf_cdf_;
  std::map<int64_t, Claim> journal_;
  std::vector<std::string> storm_names_;  // live names minted by the storm
  uint32_t version_ = 0;
  ChaosWorkloadStats stats_;
};

}  // namespace slice::chaos

#endif  // SLICE_CHAOS_WORKLOAD_H_
