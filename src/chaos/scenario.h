// Named chaos scenarios: reusable (ensemble config, fault plan, workload,
// invariant bounds) bundles, each fully deterministic — the same scenario
// always produces the same event stream and hence the same flight-dump
// content hash, which tests/chaos_matrix_test.cc pins as a golden.
//
// The matrix (paper robustness claims → scenarios):
//  * partition_heal     — full partition of a dir server + a storage node;
//                         heal ⇒ adoption, handoff, mirror resync all close.
//  * asymmetric_loss    — heavy one-directional loss toward a storage node;
//                         heartbeats (outbound) keep flowing ⇒ no deaths,
//                         RPC retransmission masks the rest.
//  * burst_loss         — Gilbert-Elliott burst loss on every link; false
//                         suspicions allowed but every episode must close.
//  * gray_disk          — one node's disks 20× slower + a laggy NIC;
//                         slow-but-alive must NOT be declared dead.
//  * correlated_crash   — two storage nodes and the coordinator crash in one
//                         window; acked writes survive the double failure.
//  * skewed_heartbeats  — clock skew past the detector timeout ⇒ an alive
//                         node flaps dead/rejoined; epochs stay monotone.
//  * flapping_node      — a dir server crash/restart cycle, twice, under
//                         metadata churn; no double-adopt, all chains close.
//  * stale_cache_partition — the only client partitioned across an epoch
//                         bump with the proxy cache on; post-heal churn
//                         triggers a hotspot re-stripe and no op may be
//                         served from a stale cached mapping.
//  * noisy_neighbor     — tenant 2 hammers Zipf-skewed lookups while gray
//                         disks slow tenant 1's FileSync writes; tenant 1's
//                         slo_burn must fire with a resolvable exemplar
//                         trace and clear after the heal.
#ifndef SLICE_CHAOS_SCENARIO_H_
#define SLICE_CHAOS_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/invariants.h"
#include "src/chaos/workload.h"
#include "src/slice/ensemble.h"

namespace slice::chaos {

struct Scenario {
  std::string name;
  std::string description;
  EnsembleConfig config;          // chaos plan rides in config.chaos
  ChaosWorkloadParams workload;
  InvariantBounds bounds;
  // Sim-time margin run after the workload and the last fault heal, so
  // rejoin sweeps, handoffs and resyncs finish before verification.
  SimTime settle = FromMillis(1500);
  // Optional background traffic armed after workload Setup(), before Run()
  // (e.g. noisy_neighbor's aggressor tenant). The returned handle keeps the
  // traffic source alive for the scenario's duration.
  std::function<std::shared_ptr<void>(Ensemble&)> background;
};

struct ScenarioResult {
  InvariantReport report;
  ChaosWorkloadStats stats;
  std::string flight_json;
  uint64_t flight_hash = 0;
  SimTime finished_at = 0;
};

// The named matrix, in a stable order.
std::vector<Scenario> ScenarioMatrix();

// nullptr when `name` is not in the matrix.
const Scenario* FindScenario(const std::vector<Scenario>& matrix, const std::string& name);

// Builds a fresh ensemble, arms the plan, runs the workload through the
// fault windows, settles, verifies, and replays the event log through the
// invariant checker.
ScenarioResult RunScenario(const Scenario& scenario);

}  // namespace slice::chaos

#endif  // SLICE_CHAOS_SCENARIO_H_
