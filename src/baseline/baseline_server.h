// Baseline: a monolithic single-node NFSv3 server, the comparison point in
// the paper's evaluation. Two configurations:
//   * memory-backed ("N-MFS", Fig 3): FreeBSD MFS-style, no disk time —
//     fast until its single CPU saturates;
//   * disk-backed (Fig 5's "NFS" line): one server exporting its whole disk
//     array as a single volume through a CCD-style concatenator.
//
// Everything (name space + file data) is served from this one node, so it
// has none of Slice's request routing — which is exactly the point.
#ifndef SLICE_BASELINE_BASELINE_SERVER_H_
#define SLICE_BASELINE_BASELINE_SERVER_H_

#include <map>
#include <string>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/disk.h"
#include "src/storage/block_cache.h"
#include "src/storage/object_store.h"

namespace slice {

struct BaselineServerParams {
  bool memory_backed = false;   // true = MFS; false = FFS over CCD
  uint64_t capacity_bytes = 64ull << 30;
  uint64_t cache_bytes = 256ull << 20;
  size_t num_disks = 8;
  DiskParams disk;
  double channel_mb_per_s = 75.0;
  double name_op_cpu_us = 110.0;  // a plain NFS server's name-op cost
  double io_op_cpu_us = 60.0;
  double cpu_ns_per_byte = 3.0;
  uint32_t volume = 1;
  uint64_t volume_secret = 0;
  // Extra metadata disk I/Os per cache-missing block (FFS inode/indirect
  // traffic); calibrated by the SPECsfs benches, 0 elsewhere.
  double extra_meta_ios = 0.0;
};

constexpr uint64_t kRootBaselineFileid = 1;

class BaselineServer : public RpcServerNode {
 public:
  BaselineServer(Network& net, EventQueue& queue, NetAddr addr, BaselineServerParams params);

  FileHandle RootHandle() const;
  size_t file_count() const { return attrs_.size(); }
  const BlockCache& cache() const { return cache_; }

 protected:
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override;

 private:
  struct EntryKey {
    uint64_t dir;
    std::string name;
    bool operator==(const EntryKey&) const = default;
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey& k) const {
      return static_cast<size_t>(Fnv1a64(k.name, k.dir ^ kFnvOffsetBasis));
    }
  };

  NfsTime Now() const;
  FileHandle MintHandle(uint64_t fileid, FileType3 type) const;
  Fattr3* FindAttr(uint64_t fileid);
  Fattr3 NewAttr(uint64_t fileid, FileType3 type) const;
  void TouchDir(uint64_t dir_id, int entry_delta, int nlink_delta);
  void ChargeDisk(const std::vector<PhysBlock>& blocks, bool write, ServiceCost& cost);

  void DoGetattr(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoSetattr(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoLookup(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoAccess(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoReadlink(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoRead(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoWrite(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoCreate(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoMkdir(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoSymlink(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoRemove(XdrDecoder& dec, bool rmdir, XdrEncoder& reply, ServiceCost& cost);
  void DoRename(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoLink(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);
  void DoReaddir(XdrDecoder& dec, bool plus, XdrEncoder& reply, ServiceCost& cost);
  void DoCommit(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost);

  BaselineServerParams params_;
  ObjectStore data_;
  BlockCache cache_;
  DiskArray disks_;
  std::unordered_map<EntryKey, FileHandle, EntryKeyHash> entries_;
  std::unordered_map<uint64_t, Fattr3> attrs_;
  std::unordered_map<uint64_t, std::string> symlinks_;
  std::unordered_map<uint64_t, std::map<std::string, FileHandle>> dir_index_;
  uint64_t next_fileid_ = kRootBaselineFileid + 1;
  uint64_t write_verifier_;
  Rng rng_{0xba5e};
  double meta_debt_ = 0.0;
};

}  // namespace slice

#endif  // SLICE_BASELINE_BASELINE_SERVER_H_
