#include "src/baseline/baseline_server.h"

#include <algorithm>

namespace slice {

BaselineServer::BaselineServer(Network& net, EventQueue& queue, NetAddr addr,
                               BaselineServerParams params)
    : RpcServerNode(net, queue, addr, kNfsPort),
      params_(params),
      data_(params.capacity_bytes),
      cache_(params.cache_bytes),
      disks_(params.num_disks, params.disk, params.channel_mb_per_s),
      write_verifier_(Fnv1a64(std::string_view("baseline")) ^ addr) {
  attrs_[kRootBaselineFileid] = NewAttr(kRootBaselineFileid, FileType3::kDir);
}

FileHandle BaselineServer::RootHandle() const {
  return MintHandle(kRootBaselineFileid, FileType3::kDir);
}

NfsTime BaselineServer::Now() const {
  return NfsTime{static_cast<uint32_t>(now() / kNanosPerSec),
                 static_cast<uint32_t>(now() % kNanosPerSec)};
}

FileHandle BaselineServer::MintHandle(uint64_t fileid, FileType3 type) const {
  return FileHandle::Make(params_.volume, fileid, 1, type, 1, params_.volume_secret);
}

Fattr3* BaselineServer::FindAttr(uint64_t fileid) {
  auto it = attrs_.find(fileid);
  return it == attrs_.end() ? nullptr : &it->second;
}

Fattr3 BaselineServer::NewAttr(uint64_t fileid, FileType3 type) const {
  Fattr3 attr;
  attr.type = type;
  attr.mode = type == FileType3::kDir ? 0755 : 0644;
  attr.nlink = type == FileType3::kDir ? 2 : 1;
  attr.fsid = params_.volume;
  attr.fileid = fileid;
  attr.atime = attr.mtime = attr.ctime = Now();
  return attr;
}

void BaselineServer::TouchDir(uint64_t dir_id, int entry_delta, int nlink_delta) {
  Fattr3* attr = FindAttr(dir_id);
  if (attr == nullptr) {
    return;
  }
  attr->mtime = attr->ctime = Now();
  attr->size = static_cast<uint64_t>(
      std::max<int64_t>(0, static_cast<int64_t>(attr->size) + entry_delta));
  attr->nlink = static_cast<uint32_t>(
      std::max<int64_t>(1, static_cast<int64_t>(attr->nlink) + nlink_delta));
}

void BaselineServer::ChargeDisk(const std::vector<PhysBlock>& blocks, bool write,
                                ServiceCost& cost) {
  if (params_.memory_backed) {
    return;  // MFS: RAM only
  }
  for (PhysBlock block : blocks) {
    if (!write && cache_.Access(block)) {
      continue;
    }
    if (write) {
      cache_.Insert(block);
    }
    const size_t disk = block % disks_.num_disks();
    const uint64_t pos = (block / disks_.num_disks()) * kStoreBlockSize;
    cost.MergeCompletion(disks_.SubmitIo(now(), disk, pos, kStoreBlockSize));
    meta_debt_ += params_.extra_meta_ios;
    while (meta_debt_ >= 1.0) {
      meta_debt_ -= 1.0;
      const size_t mdisk = rng_.NextBelow(disks_.num_disks());
      const uint64_t mpos = rng_.NextBelow(data_.capacity_blocks()) * kStoreBlockSize;
      cost.MergeCompletion(disks_.SubmitIo(now(), mdisk, mpos, kStoreBlockSize));
    }
  }
}

void BaselineServer::DoGetattr(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  GetattrRes res;
  Result<GetattrArgs> args = GetattrArgs::Decode(dec);
  Fattr3* attr = args.ok() ? FindAttr(args->object.fileid()) : nullptr;
  if (attr == nullptr) {
    res.status = Nfsstat3::kErrStale;
  } else {
    res.attributes = *attr;
  }
  res.Encode(reply);
}

void BaselineServer::DoSetattr(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  SetattrRes res;
  Result<SetattrArgs> args = SetattrArgs::Decode(dec);
  Fattr3* attr = args.ok() ? FindAttr(args->object.fileid()) : nullptr;
  if (attr == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  const Sattr3& set = args->new_attributes;
  if (set.mode) {
    attr->mode = *set.mode;
  }
  if (set.size) {
    attr->size = *set.size;
    (void)data_.Truncate(args->object.fileid(), *set.size);
  }
  if (set.mtime) {
    attr->mtime = *set.mtime;
  }
  if (set.atime) {
    attr->atime = *set.atime;
  }
  attr->ctime = Now();
  res.wcc.after = *attr;
  res.Encode(reply);
}

void BaselineServer::DoLookup(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  LookupRes res;
  Result<DirOpArgs> args = DirOpArgs::Decode(dec);
  if (!args.ok()) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  if (Fattr3* dir_attr = FindAttr(args->dir.fileid()); dir_attr != nullptr) {
    res.dir_attributes = *dir_attr;
  }
  const auto it = entries_.find(EntryKey{args->dir.fileid(), args->name});
  if (it == entries_.end()) {
    res.status = Nfsstat3::kErrNoent;
  } else {
    res.object = it->second;
    if (Fattr3* attr = FindAttr(it->second.fileid()); attr != nullptr) {
      res.obj_attributes = *attr;
    }
  }
  res.Encode(reply);
}

void BaselineServer::DoAccess(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  AccessRes res;
  Result<AccessArgs> args = AccessArgs::Decode(dec);
  Fattr3* attr = args.ok() ? FindAttr(args->object.fileid()) : nullptr;
  if (attr == nullptr) {
    res.status = Nfsstat3::kErrStale;
  } else {
    res.obj_attributes = *attr;
    res.access = args->access;
  }
  res.Encode(reply);
}

void BaselineServer::DoReadlink(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  ReadlinkRes res;
  Result<GetattrArgs> args = GetattrArgs::Decode(dec);
  const auto it = args.ok() ? symlinks_.find(args->object.fileid()) : symlinks_.end();
  if (it == symlinks_.end()) {
    res.status = Nfsstat3::kErrInval;
  } else {
    res.target = it->second;
    if (Fattr3* attr = FindAttr(args->object.fileid()); attr != nullptr) {
      res.symlink_attributes = *attr;
    }
  }
  res.Encode(reply);
}

void BaselineServer::DoRead(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  ReadRes res;
  Result<ReadArgs> args = ReadArgs::Decode(dec);
  Fattr3* attr = args.ok() ? FindAttr(args->file.fileid()) : nullptr;
  if (attr == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  Result<StoreReadResult> read = data_.Read(args->file.fileid(), args->offset, args->count);
  if (!read.ok()) {
    res.status = Nfsstat3::kErrIo;
    res.Encode(reply);
    return;
  }
  ChargeDisk(read->blocks_read, /*write=*/false, cost);
  cost.AddCpu(static_cast<SimTime>(static_cast<double>(read->data.size()) *
                                   params_.cpu_ns_per_byte));
  attr->atime = Now();
  res.file_attributes = *attr;
  res.count = static_cast<uint32_t>(read->data.size());
  // eof reflects the attribute size (data_ may be sparse/short).
  res.eof = args->offset + res.count >= attr->size;
  res.data = std::move(read->data);
  res.Encode(reply);
}

void BaselineServer::DoWrite(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  WriteRes res;
  Result<WriteArgs> args = WriteArgs::Decode(dec);
  Fattr3* attr = args.ok() ? FindAttr(args->file.fileid()) : nullptr;
  if (attr == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  const bool stable = args->stable != StableHow::kUnstable;
  Result<StoreWriteResult> write =
      data_.Write(args->file.fileid(), args->offset, args->data, stable);
  if (!write.ok()) {
    res.status = Nfsstat3::kErrNospc;
    res.Encode(reply);
    return;
  }
  if (stable) {
    ChargeDisk(write->blocks_written, /*write=*/true, cost);
  }
  cost.AddCpu(static_cast<SimTime>(static_cast<double>(args->data.size()) *
                                   params_.cpu_ns_per_byte));
  attr->size = std::max<uint64_t>(attr->size, args->offset + args->data.size());
  attr->mtime = attr->ctime = Now();
  res.count = static_cast<uint32_t>(args->data.size());
  res.committed = stable ? StableHow::kFileSync : StableHow::kUnstable;
  res.verf = write_verifier_;
  res.wcc.after = *attr;
  res.Encode(reply);
}

void BaselineServer::DoCreate(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  CreateRes res;
  Result<CreateArgs> args = CreateArgs::Decode(dec);
  if (!args.ok() || FindAttr(args->dir.fileid()) == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  const EntryKey key{args->dir.fileid(), args->name};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    if (args->mode == CreateMode::kUnchecked) {
      res.object = it->second;
      if (Fattr3* attr = FindAttr(it->second.fileid()); attr != nullptr) {
        res.obj_attributes = *attr;
      }
    } else {
      res.status = Nfsstat3::kErrExist;
    }
    res.Encode(reply);
    return;
  }
  const uint64_t fileid = next_fileid_++;
  const FileHandle fh = MintHandle(fileid, FileType3::kReg);
  attrs_[fileid] = NewAttr(fileid, FileType3::kReg);
  entries_[key] = fh;
  dir_index_[args->dir.fileid()][args->name] = fh;
  TouchDir(args->dir.fileid(), +1, 0);
  res.object = fh;
  res.obj_attributes = attrs_[fileid];
  res.Encode(reply);
}

void BaselineServer::DoMkdir(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  CreateRes res;
  Result<MkdirArgs> args = MkdirArgs::Decode(dec);
  if (!args.ok() || FindAttr(args->dir.fileid()) == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  const EntryKey key{args->dir.fileid(), args->name};
  if (entries_.contains(key)) {
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }
  const uint64_t fileid = next_fileid_++;
  const FileHandle fh = MintHandle(fileid, FileType3::kDir);
  attrs_[fileid] = NewAttr(fileid, FileType3::kDir);
  entries_[key] = fh;
  dir_index_[args->dir.fileid()][args->name] = fh;
  TouchDir(args->dir.fileid(), +1, +1);
  res.object = fh;
  res.obj_attributes = attrs_[fileid];
  res.Encode(reply);
}

void BaselineServer::DoSymlink(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  CreateRes res;
  Result<SymlinkArgs> args = SymlinkArgs::Decode(dec);
  if (!args.ok() || FindAttr(args->dir.fileid()) == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  const EntryKey key{args->dir.fileid(), args->name};
  if (entries_.contains(key)) {
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }
  const uint64_t fileid = next_fileid_++;
  const FileHandle fh = MintHandle(fileid, FileType3::kLnk);
  Fattr3 attr = NewAttr(fileid, FileType3::kLnk);
  attr.size = args->target.size();
  attrs_[fileid] = attr;
  symlinks_[fileid] = args->target;
  entries_[key] = fh;
  dir_index_[args->dir.fileid()][args->name] = fh;
  TouchDir(args->dir.fileid(), +1, 0);
  res.object = fh;
  res.obj_attributes = attr;
  res.Encode(reply);
}

void BaselineServer::DoRemove(XdrDecoder& dec, bool rmdir, XdrEncoder& reply,
                              ServiceCost& cost) {
  (void)cost;
  RemoveRes res;
  Result<DirOpArgs> args = DirOpArgs::Decode(dec);
  if (!args.ok()) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  const EntryKey key{args->dir.fileid(), args->name};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    res.status = Nfsstat3::kErrNoent;
    res.Encode(reply);
    return;
  }
  const FileHandle child = it->second;
  if (rmdir != child.IsDir()) {
    res.status = rmdir ? Nfsstat3::kErrNotdir : Nfsstat3::kErrIsdir;
    res.Encode(reply);
    return;
  }
  if (rmdir) {
    const auto dit = dir_index_.find(child.fileid());
    if (dit != dir_index_.end() && !dit->second.empty()) {
      res.status = Nfsstat3::kErrNotempty;
      res.Encode(reply);
      return;
    }
    dir_index_.erase(child.fileid());
    attrs_.erase(child.fileid());
    TouchDir(args->dir.fileid(), -1, -1);
  } else {
    Fattr3* attr = FindAttr(child.fileid());
    if (attr != nullptr && --attr->nlink == 0) {
      attrs_.erase(child.fileid());
      symlinks_.erase(child.fileid());
      (void)data_.Remove(child.fileid());
    }
    TouchDir(args->dir.fileid(), -1, 0);
  }
  entries_.erase(it);
  auto dir_it = dir_index_.find(args->dir.fileid());
  if (dir_it != dir_index_.end()) {
    dir_it->second.erase(args->name);
  }
  if (Fattr3* dir_attr = FindAttr(args->dir.fileid()); dir_attr != nullptr) {
    res.dir_wcc.after = *dir_attr;
  }
  res.Encode(reply);
}

void BaselineServer::DoRename(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  RenameRes res;
  Result<RenameArgs> args = RenameArgs::Decode(dec);
  if (!args.ok()) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  const EntryKey from_key{args->from_dir.fileid(), args->from_name};
  const auto it = entries_.find(from_key);
  if (it == entries_.end()) {
    res.status = Nfsstat3::kErrNoent;
    res.Encode(reply);
    return;
  }
  const FileHandle child = it->second;
  const EntryKey to_key{args->to_dir.fileid(), args->to_name};
  if (const auto target = entries_.find(to_key); target != entries_.end()) {
    if (target->second.IsDir()) {
      const auto dit = dir_index_.find(target->second.fileid());
      if (dit != dir_index_.end() && !dit->second.empty()) {
        res.status = Nfsstat3::kErrNotempty;
        res.Encode(reply);
        return;
      }
      attrs_.erase(target->second.fileid());
    } else if (Fattr3* attr = FindAttr(target->second.fileid());
               attr != nullptr && --attr->nlink == 0) {
      attrs_.erase(target->second.fileid());
      (void)data_.Remove(target->second.fileid());
    }
    entries_.erase(target);
    dir_index_[args->to_dir.fileid()].erase(args->to_name);
  }
  entries_.erase(from_key);
  dir_index_[args->from_dir.fileid()].erase(args->from_name);
  entries_[to_key] = child;
  dir_index_[args->to_dir.fileid()][args->to_name] = child;
  const bool cross = args->from_dir.fileid() != args->to_dir.fileid();
  TouchDir(args->from_dir.fileid(), -1, child.IsDir() && cross ? -1 : 0);
  TouchDir(args->to_dir.fileid(), +1, child.IsDir() && cross ? +1 : 0);
  res.Encode(reply);
}

void BaselineServer::DoLink(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  LinkRes res;
  Result<LinkArgs> args = LinkArgs::Decode(dec);
  if (!args.ok() || FindAttr(args->file.fileid()) == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  const EntryKey key{args->dir.fileid(), args->name};
  if (entries_.contains(key)) {
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }
  entries_[key] = args->file;
  dir_index_[args->dir.fileid()][args->name] = args->file;
  Fattr3* attr = FindAttr(args->file.fileid());
  ++attr->nlink;
  TouchDir(args->dir.fileid(), +1, 0);
  res.file_attributes = *attr;
  res.Encode(reply);
}

void BaselineServer::DoReaddir(XdrDecoder& dec, bool plus, XdrEncoder& reply,
                               ServiceCost& cost) {
  (void)cost;
  ReaddirRes res;
  res.plus = plus;
  Result<ReaddirArgs> args = ReaddirArgs::Decode(dec, plus);
  if (!args.ok()) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  if (Fattr3* attr = FindAttr(args->dir.fileid()); attr != nullptr) {
    res.dir_attributes = *attr;
  }
  const auto dit = dir_index_.find(args->dir.fileid());
  res.eof = true;
  res.cookieverf = 1;
  if (dit != dir_index_.end()) {
    const uint32_t budget = std::max<uint32_t>(plus ? args->maxcount : args->count, 512);
    uint32_t used = 0;
    uint64_t index = 0;
    for (const auto& [name, fh] : dit->second) {
      ++index;
      if (index <= args->cookie) {
        continue;
      }
      const uint32_t entry_size = static_cast<uint32_t>(24 + name.size()) +
                                  (plus ? kFattr3WireSize + FileHandle::kSize + 12 : 0);
      if (used + entry_size > budget) {
        res.eof = false;
        break;
      }
      used += entry_size;
      DirEntry entry;
      entry.fileid = fh.fileid();
      entry.name = name;
      entry.cookie = index;
      if (plus) {
        entry.handle = fh;
        if (Fattr3* attr = FindAttr(fh.fileid()); attr != nullptr) {
          entry.attr = *attr;
        }
      }
      res.entries.push_back(std::move(entry));
    }
  }
  res.Encode(reply);
}

void BaselineServer::DoCommit(XdrDecoder& dec, XdrEncoder& reply, ServiceCost& cost) {
  CommitRes res;
  Result<CommitArgs> args = CommitArgs::Decode(dec);
  if (!args.ok()) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  const std::vector<PhysBlock> written = data_.Commit(args->file.fileid());
  ChargeDisk(written, /*write=*/true, cost);
  res.verf = write_verifier_;
  if (Fattr3* attr = FindAttr(args->file.fileid()); attr != nullptr) {
    res.wcc.after = *attr;
  }
  res.Encode(reply);
}

RpcAcceptStat BaselineServer::HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                         ServiceCost& cost) {
  if (call.prog != kNfsProgram || call.vers != kNfsVersion) {
    return RpcAcceptStat::kProgUnavail;
  }
  XdrDecoder dec(call.body);
  const NfsProc proc = static_cast<NfsProc>(call.proc);
  const bool is_io =
      proc == NfsProc::kRead || proc == NfsProc::kWrite || proc == NfsProc::kCommit;
  cost.AddCpu(FromMicros(is_io ? params_.io_op_cpu_us : params_.name_op_cpu_us));

  switch (proc) {
    case NfsProc::kNull:
      return RpcAcceptStat::kSuccess;
    case NfsProc::kGetattr:
      DoGetattr(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kSetattr:
      DoSetattr(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kLookup:
      DoLookup(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kAccess:
      DoAccess(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kReadlink:
      DoReadlink(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kRead:
      DoRead(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kWrite:
      DoWrite(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kCreate:
      DoCreate(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kMkdir:
      DoMkdir(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kSymlink:
      DoSymlink(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kRemove:
    case NfsProc::kRmdir:
      DoRemove(dec, proc == NfsProc::kRmdir, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kRename:
      DoRename(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kLink:
      DoLink(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus:
      DoReaddir(dec, proc == NfsProc::kReaddirplus, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kCommit:
      DoCommit(dec, reply, cost);
      return RpcAcceptStat::kSuccess;
    case NfsProc::kFsstat: {
      FsstatRes res;
      res.tbytes = params_.capacity_bytes;
      res.fbytes = res.abytes =
          params_.capacity_bytes - data_.used_blocks() * kStoreBlockSize;
      res.tfiles = 1u << 24;
      res.ffiles = res.afiles = res.tfiles - attrs_.size();
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kFsinfo: {
      FsinfoRes res;
      if (Fattr3* attr = FindAttr(kRootBaselineFileid); attr != nullptr) {
        res.obj_attributes = *attr;
      }
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    default:
      return RpcAcceptStat::kProcUnavail;
  }
}

}  // namespace slice
