#include "src/sfs/fragment_alloc.h"

namespace slice {

uint32_t FragmentSizeFor(uint32_t need) {
  uint32_t size = kMinFragment;
  while (size < need && size < kMaxFragment) {
    size <<= 1;
  }
  SLICE_CHECK(need <= kMaxFragment);
  return size;
}

size_t FragmentClassOf(uint32_t alloc_size) {
  size_t cls = 0;
  uint32_t size = kMinFragment;
  while (size < alloc_size) {
    size <<= 1;
    ++cls;
  }
  SLICE_CHECK(size == alloc_size && cls < kFragmentClasses);
  return cls;
}

Fragment FragmentAllocator::Allocate(uint32_t need) {
  const uint32_t size = FragmentSizeFor(need);
  const size_t cls = FragmentClassOf(size);
  allocated_bytes_ += size;
  if (!free_lists_[cls].empty()) {
    const uint64_t offset = free_lists_[cls].back();
    free_lists_[cls].pop_back();
    free_bytes_ -= size;
    ++reused_;
    return Fragment{offset, size};
  }
  // Fragments are naturally aligned to their size (like FFS fragments), so
  // a fragment never straddles more backing blocks than necessary.
  const uint64_t offset = (tail_ + size - 1) / size * size;
  tail_ = offset + size;
  return Fragment{offset, size};
}

void FragmentAllocator::Free(Fragment fragment) {
  if (!fragment.valid()) {
    return;
  }
  free_lists_[FragmentClassOf(fragment.alloc_size)].push_back(fragment.offset);
  allocated_bytes_ -= fragment.alloc_size;
  free_bytes_ += fragment.alloc_size;
}

}  // namespace slice
