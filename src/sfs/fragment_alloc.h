// Variable-fragment allocator for small-file data (paper §4.4): each 8KB
// logical block gets physical space rounded up to the next power of two
// (minimum 128 bytes), allocated best-fit from per-class free lists or
// carved sequentially from the end of the backing zone — the SquidMLA-style
// layout that batches newly created files into one stream.
#ifndef SLICE_SFS_FRAGMENT_ALLOC_H_
#define SLICE_SFS_FRAGMENT_ALLOC_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace slice {

constexpr uint32_t kMinFragment = 128;
constexpr uint32_t kMaxFragment = 8192;
constexpr size_t kFragmentClasses = 7;  // 128, 256, ..., 8192

// Power-of-two size class for a payload of `need` bytes.
uint32_t FragmentSizeFor(uint32_t need);
size_t FragmentClassOf(uint32_t alloc_size);

struct Fragment {
  uint64_t offset = ~0ull;  // within the backing zone
  uint32_t alloc_size = 0;

  bool valid() const { return alloc_size != 0; }
};

class FragmentAllocator {
 public:
  FragmentAllocator() = default;

  // Allocates a fragment with capacity >= need (rounded to a class size).
  Fragment Allocate(uint32_t need);
  void Free(Fragment fragment);

  uint64_t zone_tail() const { return tail_; }
  uint64_t allocated_bytes() const { return allocated_bytes_; }
  uint64_t free_bytes() const { return free_bytes_; }
  uint64_t reused_fragments() const { return reused_; }

 private:
  uint64_t tail_ = 0;
  uint64_t allocated_bytes_ = 0;
  uint64_t free_bytes_ = 0;
  uint64_t reused_ = 0;
  std::array<std::vector<uint64_t>, kFragmentClasses> free_lists_;
};

}  // namespace slice

#endif  // SLICE_SFS_FRAGMENT_ALLOC_H_
