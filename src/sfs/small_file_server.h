// Small-file server (paper §4.4): absorbs I/O below the threshold offset.
// Each file is a sequence of 8KB logical blocks; per-file map records give
// (offset, length) extents into zones backed by objects in the block storage
// service — the server itself is dataless.
//
// Data and map-record pages are cached in a RAM page pool governed by an LRU
// block cache (the "kernel file buffer cache"); misses fetch from the
// storage array over real RPC, and commits flush dirty pages back with
// clustered writes. Map-record mutations are journaled to a WAL for crash
// recovery.
#ifndef SLICE_SFS_SMALL_FILE_SERVER_H_
#define SLICE_SFS_SMALL_FILE_SERVER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/dir/wal.h"
#include "src/nfs/nfs_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sfs/fragment_alloc.h"
#include "src/storage/block_cache.h"

namespace slice {

struct SmallFileServerParams {
  uint64_t cache_bytes = 512ull << 20;
  double op_cpu_us = 90.0;
  double cpu_ns_per_byte = 4.0;
  uint32_t threshold = 65536;
  uint64_t volume_secret = 0;
  uint32_t server_index = 0;
  bool check_capability = true;
  // WAL backing for map records; disabled when backing_node.addr == 0.
  Endpoint backing_node;
  FileHandle backing_object;
  // Lazy write-back cadence for dirty pages not covered by a commit (map
  // descriptor pages, unstable stragglers) — the kernel syncer's job.
  SimTime syncer_interval = FromSeconds(1);
};

class SmallFileServer : public RpcServerNode {
 public:
  // `storage_nodes` back the data zones; the backing object is striped over
  // them by 8KB block index.
  SmallFileServer(Network& net, EventQueue& queue, NetAddr addr, SmallFileServerParams params,
                  std::vector<Endpoint> storage_nodes);
  ~SmallFileServer() override { *alive_ = false; }

  size_t file_count() const { return maps_.size(); }
  const BlockCache& cache() const { return cache_; }
  const FragmentAllocator& allocator() const { return alloc_; }
  uint64_t backing_fetches() const { return backing_fetches_; }
  uint64_t backing_flushes() const { return backing_flushes_; }
  uint64_t LocalSize(uint64_t fileid) const;

  // Forces a flush of dirty pages and the WAL (clean shutdown in tests).
  void FlushDirtyForTest() {
    FlushDirty([] {});
    if (wal_) {
      wal_->Flush();
    }
  }

  // Backing fetches/flushes and WAL appends ride the requesting trace.
  void set_tracer(obs::Tracer* tracer) override {
    RpcServerNode::set_tracer(tracer);
    for (auto& client : node_clients_) {
      client->set_tracer(tracer);
    }
    if (wal_) {
      wal_->set_tracer(tracer);
    }
  }

  // Adds file-cache, backing-store traffic, and WAL instruments on top of
  // the base server metrics.
  void set_metrics(obs::Metrics* metrics) override {
    RpcServerNode::set_metrics(metrics);
    if (metrics == nullptr || !metrics->enabled()) {
      return;
    }
    obs::MetricsRegistry& reg = metrics->Registry(addr());
    reg.GetCounter("sfs_backing_fetches")->SetProvider([this]() { return backing_fetches_; });
    reg.GetCounter("sfs_backing_flushes")->SetProvider([this]() { return backing_flushes_; });
    reg.GetCounter("sfs_cache_hits")->SetProvider([this]() { return cache_.hits(); });
    reg.GetCounter("sfs_cache_misses")->SetProvider([this]() { return cache_.misses(); });
    reg.GetGauge("sfs_files")->SetProvider(
        [this]() { return static_cast<int64_t>(maps_.size()); });
    if (wal_) {
      reg.GetCounter("sfs_wal_bytes")->SetProvider([this]() { return wal_->bytes_logged(); });
      reg.GetCounter("sfs_wal_records")->SetProvider(
          [this]() { return wal_->records_logged(); });
      reg.GetCounter("sfs_wal_flushes")->SetProvider([this]() { return wal_->flushes(); });
    }
  }

 protected:
  void DispatchCall(const RpcMessageView& call, const Endpoint& client, ReplyFn done) override;
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override;
  void OnRestart() override;

 private:
  struct BlockExtent {
    Fragment fragment;
    uint32_t length = 0;  // valid bytes within the logical block
  };
  struct MapRecord {
    uint64_t size = 0;
    std::vector<BlockExtent> blocks;
  };

  using Done = std::function<void(RpcAcceptStat, Bytes, ServiceCost)>;

  // Fetches any non-resident backing blocks, then runs `next` (possibly
  // synchronously when everything is resident).
  void EnsureResident(std::vector<uint64_t> blocks, std::function<void()> next);
  // Flushes all dirty pages to the storage array, then runs `next`. Dirty
  // pages batch into one stream per storage node (create batching, §4.4).
  void FlushDirty(std::function<void()> next);
  // Flushes only `fileid`'s dirty pages (and its map page) — the NFSv3
  // commit covers one file, not the server.
  void FlushFile(uint64_t fileid, std::function<void()> next);
  // Coalesces `blocks` into few write RPCs and flushes them.
  void FlushBlocks(std::vector<uint64_t> blocks, std::function<void()> next);

  // Backing blocks covering [offset, offset+len) of the zone.
  static std::vector<uint64_t> BlocksForRange(uint64_t offset, uint64_t len);
  uint64_t MapBlockFor(uint64_t fileid) const;

  Bytes ReadZone(uint64_t offset, uint32_t len) const;
  void WriteZone(uint64_t offset, ByteSpan data, uint64_t fileid);
  uint8_t* PageFor(uint64_t block);

  Fattr3 MakeAttr(const FileHandle& fh) const;
  bool CheckHandle(const FileHandle& fh) const;
  void LogMapRecord(uint64_t fileid);
  void LogMapRemove(uint64_t fileid);
  void ReplayRecord(ByteSpan record);

  void DoRead(const ReadArgs& args, Done done);
  void DoWrite(const WriteArgs& args, Done done);
  void DoCommit(const CommitArgs& args, Done done);
  void DoRemoveOrTruncate(uint64_t fileid, uint64_t keep_size);
  void ArmSyncer();

  SmallFileServerParams params_;
  std::vector<Endpoint> storage_nodes_;
  std::vector<std::unique_ptr<NfsClient>> node_clients_;
  FileHandle zone_handle_;
  FragmentAllocator alloc_;
  std::unordered_map<uint64_t, MapRecord> maps_;
  std::unordered_map<uint64_t, Bytes> pages_;   // resident zone pages
  std::unordered_set<uint64_t> dirty_;          // dirty zone blocks
  std::unordered_map<uint64_t, std::vector<uint64_t>> file_dirty_;  // per-file dirty blocks
  BlockCache cache_;
  std::unique_ptr<WriteAheadLog> wal_;
  bool recovering_ = false;
  uint64_t backing_fetches_ = 0;
  uint64_t backing_flushes_ = 0;
  bool syncer_armed_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slice

#endif  // SLICE_SFS_SMALL_FILE_SERVER_H_
