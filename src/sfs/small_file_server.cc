#include "src/sfs/small_file_server.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace slice {
namespace {

// Map-record pages live in a sparse high region of the zone so they never
// collide with data fragments.
constexpr uint64_t kMapZoneBaseBlock = 1ull << 33;
constexpr uint32_t kMapRecordSize = 64;

enum class SfsLogOp : uint32_t { kUpsertMap = 1, kRemoveMap = 2 };

uint64_t MapSlotFor(uint64_t fileid) {
  // Dense per minting site, preserving creation-order locality so records
  // for files created together share map pages (paper §4.4).
  return ((fileid >> 48) << 24) | (fileid & 0xffffff);
}

}  // namespace

SmallFileServer::SmallFileServer(Network& net, EventQueue& queue, NetAddr addr,
                                 SmallFileServerParams params,
                                 std::vector<Endpoint> storage_nodes)
    : RpcServerNode(net, queue, addr, kNfsPort),
      params_(params),
      storage_nodes_(std::move(storage_nodes)),
      zone_handle_(FileHandle::Make(1, (0xfeull << 48) | params.server_index, 1,
                                    FileType3::kReg, 1, params.volume_secret)),
      cache_(params.cache_bytes) {
  SLICE_CHECK(!storage_nodes_.empty());
  for (const Endpoint& node : storage_nodes_) {
    node_clients_.push_back(std::make_unique<NfsClient>(host(), queue, node));
  }
  cache_.SetEvictionHook([this](PhysBlock block) {
    if (!dirty_.contains(block)) {
      pages_.erase(block);
    }
  });
  if (params_.backing_node.addr != 0) {
    wal_ = std::make_unique<WriteAheadLog>(host(), queue, params_.backing_node,
                                           params_.backing_object);
  }
}

void SmallFileServer::ArmSyncer() {
  if (syncer_armed_) {
    return;
  }
  syncer_armed_ = true;
  queue().ScheduleAfter(params_.syncer_interval, [this, alive = alive_]() {
    if (!*alive) {
      return;
    }
    syncer_armed_ = false;
    FlushDirty([] {});
    if (!dirty_.empty()) {
      ArmSyncer();
    }
  });
}

uint64_t SmallFileServer::LocalSize(uint64_t fileid) const {
  const auto it = maps_.find(fileid);
  return it == maps_.end() ? 0 : it->second.size;
}

bool SmallFileServer::CheckHandle(const FileHandle& fh) const {
  if (!params_.check_capability) {
    return true;
  }
  return fh.VerifyCapability(params_.volume_secret);
}

Fattr3 SmallFileServer::MakeAttr(const FileHandle& fh) const {
  Fattr3 attr;
  attr.type = FileType3::kReg;
  attr.fileid = fh.fileid();
  attr.fsid = fh.volume();
  attr.size = LocalSize(fh.fileid());
  const auto it = maps_.find(fh.fileid());
  if (it != maps_.end()) {
    uint64_t used = 0;
    for (const BlockExtent& extent : it->second.blocks) {
      used += extent.fragment.alloc_size;
    }
    attr.used = used;
  }
  attr.atime = attr.mtime = attr.ctime =
      NfsTime{static_cast<uint32_t>(now() / kNanosPerSec),
              static_cast<uint32_t>(now() % kNanosPerSec)};
  return attr;
}

std::vector<uint64_t> SmallFileServer::BlocksForRange(uint64_t offset, uint64_t len) {
  std::vector<uint64_t> blocks;
  if (len == 0) {
    return blocks;
  }
  const uint64_t first = offset / kStoreBlockSize;
  const uint64_t last = (offset + len - 1) / kStoreBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    blocks.push_back(b);
  }
  return blocks;
}

uint64_t SmallFileServer::MapBlockFor(uint64_t fileid) const {
  return kMapZoneBaseBlock + MapSlotFor(fileid) * kMapRecordSize / kStoreBlockSize;
}

uint8_t* SmallFileServer::PageFor(uint64_t block) {
  Bytes& page = pages_[block];
  if (page.size() != kStoreBlockSize) {
    page.assign(kStoreBlockSize, 0);
    cache_.Insert(block);
  }
  return page.data();
}

Bytes SmallFileServer::ReadZone(uint64_t offset, uint32_t len) const {
  Bytes out(len, 0);
  uint64_t produced = 0;
  while (produced < len) {
    const uint64_t abs = offset + produced;
    const uint64_t block = abs / kStoreBlockSize;
    const size_t within = abs % kStoreBlockSize;
    const size_t take = std::min<uint64_t>(len - produced, kStoreBlockSize - within);
    const auto it = pages_.find(block);
    if (it != pages_.end()) {
      std::memcpy(out.data() + produced, it->second.data() + within, take);
    }
    produced += take;
  }
  return out;
}

void SmallFileServer::WriteZone(uint64_t offset, ByteSpan data, uint64_t fileid) {
  size_t consumed = 0;
  while (consumed < data.size()) {
    const uint64_t abs = offset + consumed;
    const uint64_t block = abs / kStoreBlockSize;
    const size_t within = abs % kStoreBlockSize;
    const size_t take = std::min(data.size() - consumed, kStoreBlockSize - within);
    std::memcpy(PageFor(block) + within, data.data() + consumed, take);
    dirty_.insert(block);
    file_dirty_[fileid].push_back(block);
    cache_.Insert(block);
    consumed += take;
  }
}

void SmallFileServer::EnsureResident(std::vector<uint64_t> blocks, std::function<void()> next) {
  std::vector<uint64_t> missing;
  for (uint64_t block : blocks) {
    if (pages_.contains(block)) {
      cache_.Access(block);
    } else {
      missing.push_back(block);
    }
  }
  if (missing.empty()) {
    next();
    return;
  }
  auto pending = std::make_shared<size_t>(missing.size());
  auto after = std::make_shared<std::function<void()>>(std::move(next));
  for (uint64_t block : missing) {
    ++backing_fetches_;
    NfsClient& client = *node_clients_[block % node_clients_.size()];
    client.Read(zone_handle_, block * kStoreBlockSize, kStoreBlockSize,
                [this, block, pending, after](Status st, const ReadRes& res) {
                  uint8_t* page = PageFor(block);
                  if (st.ok() && res.status == Nfsstat3::kOk && !res.data.empty()) {
                    std::memcpy(page, res.data.data(),
                                std::min<size_t>(res.data.size(), kStoreBlockSize));
                  }
                  cache_.Access(block);  // count the miss-fill
                  if (--*pending == 0) {
                    (*after)();
                  }
                });
  }
}

void SmallFileServer::FlushDirty(std::function<void()> next) {
  std::vector<uint64_t> blocks(dirty_.begin(), dirty_.end());
  file_dirty_.clear();
  FlushBlocks(std::move(blocks), std::move(next));
}

void SmallFileServer::FlushFile(uint64_t fileid, std::function<void()> next) {
  std::vector<uint64_t> blocks;
  if (auto it = file_dirty_.find(fileid); it != file_dirty_.end()) {
    blocks = std::move(it->second);
    file_dirty_.erase(it);
  }
  FlushBlocks(std::move(blocks), std::move(next));
}

void SmallFileServer::FlushBlocks(std::vector<uint64_t> blocks, std::function<void()> next) {
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  std::erase_if(blocks, [this](uint64_t block) { return !dirty_.contains(block); });
  if (blocks.empty()) {
    next();
    return;
  }
  for (uint64_t block : blocks) {
    dirty_.erase(block);
  }

  // Coalesce contiguous zone blocks into single (<=32KB) write RPCs.
  struct Run {
    uint64_t start;
    uint64_t len;
  };
  std::vector<Run> runs;
  for (uint64_t block : blocks) {
    if (!runs.empty() && runs.back().start + runs.back().len == block &&
        runs.back().len < 4) {
      ++runs.back().len;
    } else {
      runs.push_back(Run{block, 1});
    }
  }

  auto pending = std::make_shared<size_t>(runs.size());
  auto after = std::make_shared<std::function<void()>>(std::move(next));
  for (const Run& run : runs) {
    backing_flushes_ += run.len;
    Bytes payload;
    payload.reserve(run.len * kStoreBlockSize);
    for (uint64_t b = run.start; b < run.start + run.len; ++b) {
      const auto page_it = pages_.find(b);
      SLICE_CHECK(page_it != pages_.end());
      payload.insert(payload.end(), page_it->second.begin(), page_it->second.end());
    }
    NfsClient& client = *node_clients_[run.start % node_clients_.size()];
    client.Write(zone_handle_, run.start * kStoreBlockSize, payload, StableHow::kFileSync,
                 [this, run, pending, after](Status st, const WriteRes& res) {
                   if (!st.ok() || res.status != Nfsstat3::kOk) {
                     SLICE_WLOG << "sfs: backing flush failed";
                   }
                   for (uint64_t b = run.start; b < run.start + run.len; ++b) {
                     if (!cache_.Contains(b) && !dirty_.contains(b)) {
                       pages_.erase(b);  // was evicted while dirty
                     }
                   }
                   if (--*pending == 0) {
                     (*after)();
                   }
                 });
  }
}

void SmallFileServer::LogMapRecord(uint64_t fileid) {
  // The descriptor page is dirty, but its durability comes from the WAL;
  // the home location is written back lazily by the syncer, not per commit.
  const uint64_t map_block = MapBlockFor(fileid);
  (void)PageFor(map_block);
  dirty_.insert(map_block);
  ArmSyncer();
  if (!wal_) {
    return;
  }
  const MapRecord& record = maps_[fileid];
  XdrEncoder rec;
  rec.PutEnum(static_cast<uint32_t>(SfsLogOp::kUpsertMap));
  rec.PutUint64(fileid);
  rec.PutUint64(record.size);
  rec.PutUint32(static_cast<uint32_t>(record.blocks.size()));
  for (const BlockExtent& extent : record.blocks) {
    rec.PutUint64(extent.fragment.offset);
    rec.PutUint32(extent.fragment.alloc_size);
    rec.PutUint32(extent.length);
  }
  wal_->Append(rec.bytes());
}

void SmallFileServer::LogMapRemove(uint64_t fileid) {
  const uint64_t map_block = MapBlockFor(fileid);
  (void)PageFor(map_block);
  dirty_.insert(map_block);
  ArmSyncer();
  if (!wal_) {
    return;
  }
  XdrEncoder rec;
  rec.PutEnum(static_cast<uint32_t>(SfsLogOp::kRemoveMap));
  rec.PutUint64(fileid);
  wal_->Append(rec.bytes());
}

void SmallFileServer::ReplayRecord(ByteSpan record) {
  XdrDecoder dec(record);
  Result<uint32_t> op = dec.GetUint32();
  if (!op.ok()) {
    return;
  }
  if (static_cast<SfsLogOp>(*op) == SfsLogOp::kRemoveMap) {
    Result<uint64_t> fileid = dec.GetUint64();
    if (fileid.ok()) {
      maps_.erase(*fileid);
    }
    return;
  }
  Result<uint64_t> fileid = dec.GetUint64();
  Result<uint64_t> size = dec.GetUint64();
  Result<uint32_t> nblocks = dec.GetUint32();
  if (!fileid.ok() || !size.ok() || !nblocks.ok() || *nblocks > 4096) {
    return;
  }
  MapRecord map;
  map.size = *size;
  for (uint32_t i = 0; i < *nblocks; ++i) {
    Result<uint64_t> offset = dec.GetUint64();
    Result<uint32_t> alloc = dec.GetUint32();
    Result<uint32_t> length = dec.GetUint32();
    if (!offset.ok() || !alloc.ok() || !length.ok()) {
      return;
    }
    map.blocks.push_back(BlockExtent{Fragment{*offset, *alloc}, *length});
  }
  maps_[*fileid] = std::move(map);
}

void SmallFileServer::OnRestart() {
  pages_.clear();
  dirty_.clear();
  file_dirty_.clear();
  cache_.Clear();
  maps_.clear();
  if (!wal_) {
    return;
  }
  wal_->DiscardBuffered();
  recovering_ = true;
  wal_->Replay([this](ByteSpan record) { ReplayRecord(record); },
               [this](Status st) {
                 if (!st.ok()) {
                   SLICE_ELOG << "sfs: recovery failed: " << st.ToString();
                 }
                 // Rebuild the allocator tail past every known fragment (free
                 // lists are conservatively forgotten).
                 uint64_t tail = alloc_.zone_tail();
                 for (const auto& [fileid, map] : maps_) {
                   (void)fileid;
                   for (const BlockExtent& extent : map.blocks) {
                     tail = std::max(tail, extent.fragment.offset + extent.fragment.alloc_size);
                   }
                 }
                 while (alloc_.zone_tail() < tail) {
                   (void)alloc_.Allocate(kMaxFragment);
                 }
                 recovering_ = false;
                 SLICE_ILOG << "sfs " << params_.server_index << " recovered " << maps_.size()
                            << " map records";
                 obs::LogEvent(eventlog(), addr(), queue().now(), obs::EventSev::kInfo,
                               obs::EventCat::kFailover, obs::EventCode::kWalReplay,
                               /*trace_id=*/0, st.ok() ? "recovered" : "failed",
                               {{"sfs", params_.server_index},
                                {"maps", static_cast<int64_t>(maps_.size())}});
               });
}

void SmallFileServer::DoRead(const ReadArgs& args, Done done) {
  ServiceCost cost;
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  if (!CheckHandle(args.file)) {
    ReadRes res;
    res.status = Nfsstat3::kErrBadhandle;
    XdrEncoder enc;
    res.Encode(enc);
    done(RpcAcceptStat::kSuccess, enc.Take(), cost);
    return;
  }
  const uint64_t fileid = args.file.fileid();
  const auto map_it = maps_.find(fileid);

  // Resident set: the map-descriptor page plus every fragment overlapped by
  // the request.
  std::vector<uint64_t> need{MapBlockFor(fileid)};
  uint64_t size = 0;
  if (map_it != maps_.end()) {
    size = map_it->second.size;
    const uint64_t end = std::min<uint64_t>(size, args.offset + args.count);
    for (uint64_t abs = args.offset; abs < end;) {
      const uint64_t lblock = abs / kStoreBlockSize;
      if (lblock < map_it->second.blocks.size()) {
        const BlockExtent& extent = map_it->second.blocks[lblock];
        if (extent.fragment.valid()) {
          for (uint64_t b : BlocksForRange(extent.fragment.offset, extent.fragment.alloc_size)) {
            need.push_back(b);
          }
        }
      }
      abs = (lblock + 1) * kStoreBlockSize;
    }
  }

  const FileHandle fh = args.file;
  const uint64_t offset = args.offset;
  const uint32_t count = args.count;
  EnsureResident(std::move(need), [this, fh, fileid, offset, count, cost, size,
                                   done = std::move(done)]() mutable {
    ReadRes res;
    const auto it = maps_.find(fileid);
    if (it == maps_.end() || offset >= size) {
      res.eof = true;
      res.count = 0;
    } else {
      const MapRecord& map = it->second;
      const uint64_t n = std::min<uint64_t>(count, size - offset);
      res.data.assign(n, 0);
      uint64_t produced = 0;
      while (produced < n) {
        const uint64_t abs = offset + produced;
        const uint64_t lblock = abs / kStoreBlockSize;
        const size_t within = abs % kStoreBlockSize;
        const size_t take = std::min<uint64_t>(n - produced, kStoreBlockSize - within);
        if (lblock < map.blocks.size() && map.blocks[lblock].fragment.valid() &&
            within < map.blocks[lblock].length) {
          const size_t have = std::min<size_t>(take, map.blocks[lblock].length - within);
          Bytes chunk = ReadZone(map.blocks[lblock].fragment.offset + within,
                                 static_cast<uint32_t>(have));
          std::memcpy(res.data.data() + produced, chunk.data(), have);
        }
        produced += take;
      }
      res.count = static_cast<uint32_t>(n);
      res.eof = offset + n >= size && size < params_.threshold;
    }
    res.file_attributes = MakeAttr(fh);
    cost.AddCpu(static_cast<SimTime>(static_cast<double>(res.count) * params_.cpu_ns_per_byte));
    XdrEncoder enc;
    res.Encode(enc);
    done(RpcAcceptStat::kSuccess, enc.Take(), cost);
  });
}

void SmallFileServer::DoWrite(const WriteArgs& args, Done done) {
  ServiceCost cost;
  cost.AddCpu(FromMicros(params_.op_cpu_us) +
              static_cast<SimTime>(static_cast<double>(args.data.size()) *
                                   params_.cpu_ns_per_byte));
  if (!CheckHandle(args.file)) {
    WriteRes res;
    res.status = Nfsstat3::kErrBadhandle;
    XdrEncoder enc;
    res.Encode(enc);
    done(RpcAcceptStat::kSuccess, enc.Take(), cost);
    return;
  }
  const uint64_t fileid = args.file.fileid();

  // Residency: the map page plus existing fragments we will partially
  // overwrite or grow (their live bytes must be copied on reallocation).
  std::vector<uint64_t> need{MapBlockFor(fileid)};
  if (const auto it = maps_.find(fileid); it != maps_.end() && !args.data.empty()) {
    for (uint64_t b : BlocksForRange(args.offset, args.data.size())) {
      if (b < it->second.blocks.size() && it->second.blocks[b].fragment.valid()) {
        for (uint64_t zb :
             BlocksForRange(it->second.blocks[b].fragment.offset, it->second.blocks[b].length)) {
          need.push_back(zb);
        }
      }
    }
  }

  EnsureResident(std::move(need), [this, args, cost, done = std::move(done)]() mutable {
    const uint64_t file_id = args.file.fileid();
    MapRecord& map = maps_[file_id];
    size_t consumed = 0;
    while (consumed < args.data.size()) {
      const uint64_t abs = args.offset + consumed;
      const uint64_t lblock = abs / kStoreBlockSize;
      const size_t within = abs % kStoreBlockSize;
      const size_t take = std::min(args.data.size() - consumed, kStoreBlockSize - within);
      if (map.blocks.size() <= lblock) {
        map.blocks.resize(lblock + 1);
      }
      BlockExtent& extent = map.blocks[lblock];
      const uint32_t new_length =
          std::max<uint32_t>(extent.length, static_cast<uint32_t>(within + take));
      if (!extent.fragment.valid() || extent.fragment.alloc_size < new_length) {
        // Best-fit reallocation, copying live bytes into the new fragment.
        Fragment bigger = alloc_.Allocate(new_length);
        if (extent.fragment.valid() && extent.length > 0) {
          Bytes live = ReadZone(extent.fragment.offset, extent.length);
          WriteZone(bigger.offset, live, file_id);
        }
        alloc_.Free(extent.fragment);
        extent.fragment = bigger;
      }
      WriteZone(extent.fragment.offset + within,
                ByteSpan(args.data.data() + consumed, take), file_id);
      extent.length = new_length;
      consumed += take;
    }
    map.size = std::max(map.size, args.offset + args.data.size());
    LogMapRecord(file_id);

    auto reply = [this, args, cost, done = std::move(done)](StableHow committed) mutable {
      WriteRes res;
      res.count = static_cast<uint32_t>(args.data.size());
      res.committed = committed;
      res.verf = 0x5f5eull << 32 | params_.server_index;
      res.wcc.after = MakeAttr(args.file);
      XdrEncoder enc;
      res.Encode(enc);
      done(RpcAcceptStat::kSuccess, enc.Take(), cost);
    };
    if (args.stable != StableHow::kUnstable) {
      FlushFile(file_id, [reply = std::move(reply)]() mutable { reply(StableHow::kFileSync); });
    } else {
      reply(StableHow::kUnstable);
    }
  });
}

void SmallFileServer::DoCommit(const CommitArgs& args, Done done) {
  ServiceCost cost;
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  const FileHandle fh = args.file;
  FlushFile(fh.fileid(), [this, fh, cost, done = std::move(done)]() mutable {
    if (wal_) {
      wal_->Flush();
    }
    CommitRes res;
    res.verf = 0x5f5eull << 32 | params_.server_index;
    res.wcc.after = MakeAttr(fh);
    XdrEncoder enc;
    res.Encode(enc);
    done(RpcAcceptStat::kSuccess, enc.Take(), cost);
  });
}

void SmallFileServer::DoRemoveOrTruncate(uint64_t fileid, uint64_t keep_size) {
  const auto it = maps_.find(fileid);
  if (it == maps_.end()) {
    return;
  }
  MapRecord& map = it->second;
  const uint64_t keep_blocks = (keep_size + kStoreBlockSize - 1) / kStoreBlockSize;
  for (size_t b = keep_blocks; b < map.blocks.size(); ++b) {
    alloc_.Free(map.blocks[b].fragment);
    map.blocks[b] = BlockExtent{};
  }
  if (keep_size == 0) {
    maps_.erase(it);
    LogMapRemove(fileid);
    return;
  }
  map.blocks.resize(keep_blocks);
  map.size = std::min(map.size, keep_size);
  if (!map.blocks.empty()) {
    const size_t last_within = ((keep_size - 1) % kStoreBlockSize) + 1;
    map.blocks.back().length =
        std::min<uint32_t>(map.blocks.back().length, static_cast<uint32_t>(last_within));
  }
  LogMapRecord(fileid);
}

void SmallFileServer::DispatchCall(const RpcMessageView& call, const Endpoint& client,
                                   ReplyFn done) {
  if (call.prog != kNfsProgram || call.vers != kNfsVersion) {
    done(RpcAcceptStat::kProgUnavail, Bytes{}, ServiceCost{});
    return;
  }
  const NfsProc proc = static_cast<NfsProc>(call.proc);
  if (recovering_ &&
      (proc == NfsProc::kRead || proc == NfsProc::kWrite || proc == NfsProc::kCommit)) {
    ReadRes res;  // any status-only error body works; read's is the superset
    res.status = Nfsstat3::kErrJukebox;
    XdrEncoder enc;
    enc.PutEnum(static_cast<uint32_t>(Nfsstat3::kErrJukebox));
    enc.PutBool(false);
    done(RpcAcceptStat::kSuccess, enc.Take(), ServiceCost{});
    return;
  }
  XdrDecoder dec(call.body);
  switch (proc) {
    case NfsProc::kRead: {
      Result<ReadArgs> args = ReadArgs::Decode(dec);
      if (!args.ok()) {
        done(RpcAcceptStat::kGarbageArgs, Bytes{}, ServiceCost{});
        return;
      }
      DoRead(*args, std::move(done));
      return;
    }
    case NfsProc::kWrite: {
      Result<WriteArgs> args = WriteArgs::Decode(dec);
      if (!args.ok()) {
        done(RpcAcceptStat::kGarbageArgs, Bytes{}, ServiceCost{});
        return;
      }
      DoWrite(*args, std::move(done));
      return;
    }
    case NfsProc::kCommit: {
      Result<CommitArgs> args = CommitArgs::Decode(dec);
      if (!args.ok()) {
        done(RpcAcceptStat::kGarbageArgs, Bytes{}, ServiceCost{});
        return;
      }
      DoCommit(*args, std::move(done));
      return;
    }
    default:
      RpcServerNode::DispatchCall(call, client, std::move(done));
      return;
  }
}

RpcAcceptStat SmallFileServer::HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                          ServiceCost& cost) {
  XdrDecoder dec(call.body);
  cost.AddCpu(FromMicros(params_.op_cpu_us / 2));
  switch (static_cast<NfsProc>(call.proc)) {
    case NfsProc::kNull:
      return RpcAcceptStat::kSuccess;
    case NfsProc::kGetattr: {
      Result<GetattrArgs> args = GetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      GetattrRes res;
      if (!CheckHandle(args->object)) {
        res.status = Nfsstat3::kErrBadhandle;
      } else {
        res.attributes = MakeAttr(args->object);
      }
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kSetattr: {
      Result<SetattrArgs> args = SetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      SetattrRes res;
      if (!CheckHandle(args->object)) {
        res.status = Nfsstat3::kErrBadhandle;
      } else if (args->new_attributes.size.has_value()) {
        DoRemoveOrTruncate(args->object.fileid(), *args->new_attributes.size);
        res.wcc.after = MakeAttr(args->object);
      }
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kRemove: {
      Result<DirOpArgs> args = DirOpArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      RemoveRes res;
      if (!CheckHandle(args->dir)) {
        res.status = Nfsstat3::kErrBadhandle;
      } else if (!args->name.empty()) {
        res.status = Nfsstat3::kErrInval;
      } else {
        DoRemoveOrTruncate(args->dir.fileid(), 0);
      }
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    default:
      return RpcAcceptStat::kProcUnavail;
  }
}

}  // namespace slice
