#include "src/net/packet_pool.h"

namespace slice {
namespace {

bool g_pool_enabled = true;

}  // namespace

Bytes PacketPool::Acquire(size_t size) {
  ++acquires_;
  if (g_pool_enabled && !free_.empty()) {
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() >= size) {
      ++recycle_hits_;
      buf.clear();
      buf.resize(size);
      return buf;
    }
    // Rare: a recycled buffer too small for a jumbo datagram; fall through to
    // a fresh allocation and let the undersized buffer die here.
  }
  Bytes buf;
  // 64 bytes of slack keeps AttachTrace realloc-free even on jumbo datagrams
  // that exceed the pooled capacity.
  buf.reserve(size + 64 > kBufferCapacity ? size + 64 : kBufferCapacity);
  buf.resize(size);
  return buf;
}

void PacketPool::Release(Bytes&& buf) {
  ++releases_;
  if (!g_pool_enabled || buf.capacity() < kBufferCapacity ||
      buf.capacity() > kMaxRecycleCapacity || free_.size() >= kMaxFreeBuffers) {
    return;  // Bytes destructor frees it
  }
  free_.push_back(std::move(buf));
}

PacketPool& PacketPool::Default() {
  static PacketPool pool;
  return pool;
}

void PacketPool::SetEnabled(bool enabled) { g_pool_enabled = enabled; }

bool PacketPool::Enabled() { return g_pool_enabled; }

}  // namespace slice
