// Wire packets: an IPv4-like header plus a UDP header over a byte payload.
//
// The µproxy operates on these real bytes — parsing, rewriting addresses and
// ports, and fixing checksums incrementally — exactly the work the paper's
// packet-filter prototype performs below the FreeBSD IP stack.
//
// Simplifications vs. real IPv4: no options, no fragmentation (the testbed
// ran 9KB jumbo frames; we let a datagram ride in one simulated frame).
//
// Fast-path design (DESIGN.md §7): buffers come from PacketPool and return to
// it when a packet dies, so steady-state forwarding never heap-allocates. Two
// derived facts are cached on the packet and kept coherent by the mutators
// below: whether a trace trailer is present (HasTrace used to re-scan the
// tail on every payload() call) and one decoded "view" of the payload, an
// opaque trivially-copyable struct a higher layer (the µproxy's DecodedView)
// stashes after its single pass over the RPC/NFS headers. Address, port and
// equal-size payload rewrites preserve both caches; only mutable_bytes()
// (arbitrary external mutation) invalidates them.
#ifndef SLICE_NET_PACKET_H_
#define SLICE_NET_PACKET_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/packet_pool.h"

namespace slice {

using NetAddr = uint32_t;  // IPv4-style host address
using NetPort = uint16_t;

constexpr size_t kIpHeaderSize = 20;
constexpr size_t kUdpHeaderSize = 8;
constexpr size_t kPacketHeaderSize = kIpHeaderSize + kUdpHeaderSize;
constexpr uint8_t kProtoUdp = 17;

// Trace-context trailer (src/obs): magic + trace id + span id appended
// *after* the IP datagram, like a link-layer FCS — outside the IP total
// length, outside both checksums, and invisible to payload() parsers. A
// trailer is recognized only when the magic matches AND the (16-bit,
// modulo-2^16 for jumbo datagrams) IP length field is exactly trailer-size
// short of the buffer, so arbitrary fuzzed bytes cannot alias into one
// without also faking the length relationship.
constexpr uint32_t kTraceTrailerMagic = 0x7ace51ce;
constexpr size_t kTraceTrailerSize = 4 + 8 + 8;

// A socket-style endpoint identity.
struct Endpoint {
  NetAddr addr = 0;
  NetPort port = 0;

  bool operator==(const Endpoint&) const = default;
};

std::string AddrToString(NetAddr addr);
std::string EndpointToString(const Endpoint& ep);

// Owning packet buffer with typed accessors into the header fields.
class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes data) : data_(std::move(data)) {}

  // Value semantics: copies are deep (slow paths and tests only); moves
  // transfer the pooled buffer and the cached decode state.
  Packet(const Packet&) = default;
  Packet& operator=(const Packet&) = default;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;
  ~Packet() {
    // Capacity gate up front so moved-from and external-buffer packets skip
    // the call entirely; the pool re-checks before recycling.
    if (data_.capacity() >= PacketPool::kBufferCapacity) {
      PacketPool::Default().Release(std::move(data_));
    }
  }

  // Builds a UDP packet with correct lengths and both checksums filled in.
  // The buffer comes from PacketPool::Default().
  static Packet MakeUdp(Endpoint src, Endpoint dst, ByteSpan payload);

  bool IsValidUdp() const;

  NetAddr src_addr() const { return GetU32(data_.data() + 12); }
  NetAddr dst_addr() const { return GetU32(data_.data() + 16); }
  NetPort src_port() const { return GetU16(data_.data() + kIpHeaderSize); }
  NetPort dst_port() const { return GetU16(data_.data() + kIpHeaderSize + 2); }
  Endpoint src() const { return Endpoint{src_addr(), src_port()}; }
  Endpoint dst() const { return Endpoint{dst_addr(), dst_port()}; }
  uint16_t ip_checksum() const { return GetU16(data_.data() + 10); }
  uint16_t udp_checksum() const { return GetU16(data_.data() + kIpHeaderSize + 6); }

  // Rewrites addressing fields, adjusting the IP and UDP checksums
  // incrementally (RFC 1624) — cost proportional to bytes changed. Cached
  // views survive: addressing rewrites cannot move payload offsets.
  void RewriteSrc(Endpoint new_src);
  void RewriteDst(Endpoint new_dst);

  // Rewrites an arbitrary 16-bit-aligned byte range (header or payload),
  // patching the covering checksums incrementally. The µproxy uses this to
  // update file attributes inside NFS reply payloads in place. Equal-size
  // in-place rewrites preserve XDR framing, so cached views survive; a
  // caller that rewrites a field a view caches must clear_view() itself.
  void RewriteBytes(size_t offset, ByteSpan new_bytes);

  // Verifies the stored checksums against a full recompute (allocation-free).
  // A zero UDP checksum means "no checksum" (RFC 768) and verifies as valid.
  bool VerifyChecksums() const;
  // Recomputes both checksums from scratch (used by builders and tests).
  void RecomputeChecksums();

  // --- trace-context trailer (src/obs) ---
  //
  // Appends (or rewrites in place) the span-context trailer. Checksum
  // neutral: the trailer lives beyond the IP total length, so the checksums,
  // payload() and all rewrite paths are unaffected by its presence.
  void AttachTrace(uint64_t trace_id, uint64_t span_id);
  // True when a structurally consistent trailer is present (cached after the
  // first tail scan; builders and Attach/DetachTrace keep it coherent).
  bool HasTrace() const {
    if (trace_state_ == kTraceUnknown) {
      trace_state_ = ComputeHasTrace() ? kTracePresent : kTraceAbsent;
    }
    return trace_state_ == kTracePresent;
  }
  // Non-destructive read of the trailer ids; false when absent.
  bool PeekTrace(uint64_t* trace_id, uint64_t* span_id) const;
  // Strips the trailer (returning its ids when requested); false when absent.
  bool DetachTrace(uint64_t* trace_id = nullptr, uint64_t* span_id = nullptr);

  // --- cached decoded view ---
  //
  // One trivially-copyable decode result can ride on the packet, keyed by a
  // caller-chosen tag (the µproxy caches its DecodedView after the first
  // header walk so later stages reuse offsets instead of re-parsing). The
  // packet layer treats the bytes as opaque, which keeps net below core.
  static constexpr size_t kViewSlotCap = 152;
  template <typename T>
  bool get_view(uint32_t tag, T* out) const {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= kViewSlotCap);
    if (view_tag_ != tag) {
      return false;
    }
    std::memcpy(out, view_storage_, sizeof(T));
    return true;
  }
  template <typename T>
  void set_view(uint32_t tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= kViewSlotCap);
    std::memcpy(view_storage_, &v, sizeof(T));
    view_tag_ = tag;
  }
  void clear_view() { view_tag_ = 0; }
  bool has_view(uint32_t tag) const { return view_tag_ == tag; }

  ByteSpan payload() const {
    return ByteSpan(data_).subspan(kPacketHeaderSize,
                                   DatagramSize() - kPacketHeaderSize);
  }
  // Payload bytes may change under a cached view; structure (and the trailer
  // length relationship) cannot, so only the view cache is dropped.
  MutableByteSpan mutable_payload() {
    clear_view();
    return MutableByteSpan(data_).subspan(kPacketHeaderSize,
                                          DatagramSize() - kPacketHeaderSize);
  }

  size_t size() const { return data_.size(); }
  const Bytes& bytes() const { return data_; }
  // Arbitrary external mutation: every cached fact is invalidated.
  Bytes& mutable_bytes() {
    trace_state_ = kTraceUnknown;
    view_tag_ = 0;
    return data_;
  }

 private:
  enum : uint8_t { kTraceUnknown = 0, kTraceAbsent = 1, kTracePresent = 2 };

  // Rewrites a 16-bit-aligned region and patches both checksums.
  void RewriteField(size_t offset, ByteSpan new_bytes, bool in_udp_pseudo_header);
  uint32_t UdpPseudoHeaderSum() const;
  bool ComputeHasTrace() const;
  // Buffer size minus any trace trailer: the extent of the IP datagram that
  // length fields, checksums and payload() reason about.
  size_t DatagramSize() const { return data_.size() - (HasTrace() ? kTraceTrailerSize : 0); }

  Bytes data_;
  mutable uint8_t trace_state_ = kTraceUnknown;
  uint32_t view_tag_ = 0;
  alignas(8) unsigned char view_storage_[kViewSlotCap];
};

}  // namespace slice

#endif  // SLICE_NET_PACKET_H_
