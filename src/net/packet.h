// Wire packets: an IPv4-like header plus a UDP header over a byte payload.
//
// The µproxy operates on these real bytes — parsing, rewriting addresses and
// ports, and fixing checksums incrementally — exactly the work the paper's
// packet-filter prototype performs below the FreeBSD IP stack.
//
// Simplifications vs. real IPv4: no options, no fragmentation (the testbed
// ran 9KB jumbo frames; we let a datagram ride in one simulated frame).
#ifndef SLICE_NET_PACKET_H_
#define SLICE_NET_PACKET_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace slice {

using NetAddr = uint32_t;  // IPv4-style host address
using NetPort = uint16_t;

constexpr size_t kIpHeaderSize = 20;
constexpr size_t kUdpHeaderSize = 8;
constexpr size_t kPacketHeaderSize = kIpHeaderSize + kUdpHeaderSize;
constexpr uint8_t kProtoUdp = 17;

// Trace-context trailer (src/obs): magic + trace id + span id appended
// *after* the IP datagram, like a link-layer FCS — outside the IP total
// length, outside both checksums, and invisible to payload() parsers. A
// trailer is recognized only when the magic matches AND the (16-bit,
// modulo-2^16 for jumbo datagrams) IP length field is exactly trailer-size
// short of the buffer, so arbitrary fuzzed bytes cannot alias into one
// without also faking the length relationship.
constexpr uint32_t kTraceTrailerMagic = 0x7ace51ce;
constexpr size_t kTraceTrailerSize = 4 + 8 + 8;

// A socket-style endpoint identity.
struct Endpoint {
  NetAddr addr = 0;
  NetPort port = 0;

  bool operator==(const Endpoint&) const = default;
};

std::string AddrToString(NetAddr addr);
std::string EndpointToString(const Endpoint& ep);

// Owning packet buffer with typed accessors into the header fields.
class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes data) : data_(std::move(data)) {}

  // Builds a UDP packet with correct lengths and both checksums filled in.
  static Packet MakeUdp(Endpoint src, Endpoint dst, ByteSpan payload);

  bool IsValidUdp() const;

  NetAddr src_addr() const { return GetU32(data_.data() + 12); }
  NetAddr dst_addr() const { return GetU32(data_.data() + 16); }
  NetPort src_port() const { return GetU16(data_.data() + kIpHeaderSize); }
  NetPort dst_port() const { return GetU16(data_.data() + kIpHeaderSize + 2); }
  Endpoint src() const { return Endpoint{src_addr(), src_port()}; }
  Endpoint dst() const { return Endpoint{dst_addr(), dst_port()}; }
  uint16_t ip_checksum() const { return GetU16(data_.data() + 10); }
  uint16_t udp_checksum() const { return GetU16(data_.data() + kIpHeaderSize + 6); }

  // Rewrites addressing fields, adjusting the IP and UDP checksums
  // incrementally (RFC 1624) — cost proportional to bytes changed.
  void RewriteSrc(Endpoint new_src);
  void RewriteDst(Endpoint new_dst);

  // Rewrites an arbitrary 16-bit-aligned byte range (header or payload),
  // patching the covering checksums incrementally. The µproxy uses this to
  // update file attributes inside NFS reply payloads in place.
  void RewriteBytes(size_t offset, ByteSpan new_bytes);

  // Verifies the stored checksums against a full recompute.
  bool VerifyChecksums() const;
  // Recomputes both checksums from scratch (used by builders and tests).
  void RecomputeChecksums();

  // --- trace-context trailer (src/obs) ---
  //
  // Appends (or rewrites in place) the span-context trailer. Checksum
  // neutral: the trailer lives beyond the IP total length, so the checksums,
  // payload() and all rewrite paths are unaffected by its presence.
  void AttachTrace(uint64_t trace_id, uint64_t span_id);
  // True when a structurally consistent trailer is present.
  bool HasTrace() const;
  // Non-destructive read of the trailer ids; false when absent.
  bool PeekTrace(uint64_t* trace_id, uint64_t* span_id) const;
  // Strips the trailer (returning its ids when requested); false when absent.
  bool DetachTrace(uint64_t* trace_id = nullptr, uint64_t* span_id = nullptr);

  ByteSpan payload() const {
    return ByteSpan(data_).subspan(kPacketHeaderSize,
                                   DatagramSize() - kPacketHeaderSize);
  }
  MutableByteSpan mutable_payload() {
    return MutableByteSpan(data_).subspan(kPacketHeaderSize,
                                          DatagramSize() - kPacketHeaderSize);
  }

  size_t size() const { return data_.size(); }
  const Bytes& bytes() const { return data_; }
  Bytes& mutable_bytes() { return data_; }

 private:
  // Rewrites a 16-bit-aligned region and patches both checksums.
  void RewriteField(size_t offset, ByteSpan new_bytes, bool in_udp_pseudo_header);
  uint32_t UdpPseudoHeaderSum() const;
  // Buffer size minus any trace trailer: the extent of the IP datagram that
  // length fields, checksums and payload() reason about.
  size_t DatagramSize() const { return data_.size() - (HasTrace() ? kTraceTrailerSize : 0); }

  Bytes data_;
};

}  // namespace slice

#endif  // SLICE_NET_PACKET_H_
