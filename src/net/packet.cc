#include "src/net/packet.h"

#include "src/common/inet_checksum.h"

namespace slice {

std::string AddrToString(NetAddr addr) {
  std::string out;
  out += std::to_string((addr >> 24) & 0xff);
  out += '.';
  out += std::to_string((addr >> 16) & 0xff);
  out += '.';
  out += std::to_string((addr >> 8) & 0xff);
  out += '.';
  out += std::to_string(addr & 0xff);
  return out;
}

std::string EndpointToString(const Endpoint& ep) {
  return AddrToString(ep.addr) + ":" + std::to_string(ep.port);
}

Packet Packet::MakeUdp(Endpoint src, Endpoint dst, ByteSpan payload) {
  Packet pkt;
  pkt.data_ = PacketPool::Default().Acquire(kPacketHeaderSize + payload.size());
  pkt.trace_state_ = kTraceAbsent;  // freshly built: no trailer yet
  Bytes& b = pkt.data_;

  // IPv4 header.
  b[0] = 0x45;  // version 4, IHL 5
  b[1] = 0;     // TOS
  PutU16(&b[2], static_cast<uint16_t>(b.size()));
  PutU16(&b[4], 0);  // identification
  PutU16(&b[6], 0);  // flags/fragment
  b[8] = 64;         // TTL
  b[9] = kProtoUdp;
  PutU16(&b[10], 0);  // checksum placeholder
  PutU32(&b[12], src.addr);
  PutU32(&b[16], dst.addr);

  // UDP header.
  PutU16(&b[kIpHeaderSize], src.port);
  PutU16(&b[kIpHeaderSize + 2], dst.port);
  PutU16(&b[kIpHeaderSize + 4], static_cast<uint16_t>(kUdpHeaderSize + payload.size()));
  PutU16(&b[kIpHeaderSize + 6], 0);  // checksum placeholder

  std::copy(payload.begin(), payload.end(), b.begin() + kPacketHeaderSize);
  pkt.RecomputeChecksums();
  return pkt;
}

bool Packet::IsValidUdp() const {
  return data_.size() >= kPacketHeaderSize && data_[0] == 0x45 && data_[9] == kProtoUdp &&
         GetU16(data_.data() + 2) == DatagramSize();
}

bool Packet::ComputeHasTrace() const {
  if (data_.size() < kPacketHeaderSize + kTraceTrailerSize) {
    return false;
  }
  const uint8_t* tail = data_.data() + data_.size() - kTraceTrailerSize;
  // The IP total-length field is 16-bit but the simulator lets jumbo
  // datagrams (bulk 100KB+ writes) ride in one frame with the field
  // truncated, so the length relationship is checked modulo 2^16.
  return GetU32(tail) == kTraceTrailerMagic &&
         GetU16(data_.data() + 2) ==
             static_cast<uint16_t>(data_.size() - kTraceTrailerSize);
}

void Packet::AttachTrace(uint64_t trace_id, uint64_t span_id) {
  if (HasTrace()) {
    uint8_t* tail = data_.data() + data_.size() - kTraceTrailerSize;
    PutU64(tail + 4, trace_id);
    PutU64(tail + 12, span_id);
    return;
  }
  const size_t at = data_.size();
  data_.resize(at + kTraceTrailerSize);
  PutU32(&data_[at], kTraceTrailerMagic);
  PutU64(&data_[at + 4], trace_id);
  PutU64(&data_[at + 12], span_id);
  trace_state_ = kTracePresent;
}

bool Packet::PeekTrace(uint64_t* trace_id, uint64_t* span_id) const {
  if (!HasTrace()) {
    return false;
  }
  const uint8_t* tail = data_.data() + data_.size() - kTraceTrailerSize;
  if (trace_id != nullptr) {
    *trace_id = GetU64(tail + 4);
  }
  if (span_id != nullptr) {
    *span_id = GetU64(tail + 12);
  }
  return true;
}

bool Packet::DetachTrace(uint64_t* trace_id, uint64_t* span_id) {
  if (!PeekTrace(trace_id, span_id)) {
    return false;
  }
  data_.resize(data_.size() - kTraceTrailerSize);
  trace_state_ = kTraceAbsent;
  return true;
}

uint32_t Packet::UdpPseudoHeaderSum() const {
  // src addr + dst addr + proto + udp length.
  uint8_t pseudo[12];
  PutU32(pseudo, src_addr());
  PutU32(pseudo + 4, dst_addr());
  pseudo[8] = 0;
  pseudo[9] = kProtoUdp;
  PutU16(pseudo + 10, static_cast<uint16_t>(DatagramSize() - kIpHeaderSize));
  return OnesComplementSum(ByteSpan(pseudo, sizeof(pseudo)));
}

void Packet::RecomputeChecksums() {
  PutU16(&data_[10], 0);
  PutU16(&data_[kIpHeaderSize + 6], 0);

  const uint16_t ip_sum = InetChecksum(ByteSpan(data_.data(), kIpHeaderSize));
  PutU16(&data_[10], ip_sum);

  uint16_t udp_sum =
      InetChecksum(ByteSpan(data_.data() + kIpHeaderSize, DatagramSize() - kIpHeaderSize),
                   UdpPseudoHeaderSum());
  if (udp_sum == 0) {
    udp_sum = 0xffff;  // RFC 768: transmitted as all-ones if computed zero
  }
  PutU16(&data_[kIpHeaderSize + 6], udp_sum);
}

bool Packet::VerifyChecksums() const {
  // Recompute both sums in place by chaining spans around the stored checksum
  // fields (each field is one aligned 16-bit word, so pairing is preserved).
  const uint32_t ip_partial =
      OnesComplementSum(ByteSpan(data_.data(), 10),
                        OnesComplementSum(ByteSpan(data_.data() + 12, kIpHeaderSize - 12)));
  const uint16_t want_ip = static_cast<uint16_t>(~FoldSum(ip_partial));
  if (ip_checksum() != want_ip) {
    return false;
  }

  const uint16_t stored_udp = udp_checksum();
  if (stored_udp == 0) {
    return true;  // RFC 768: zero means the sender supplied no UDP checksum
  }
  const uint32_t udp_partial = OnesComplementSum(
      ByteSpan(data_.data() + kIpHeaderSize, 6),
      OnesComplementSum(
          ByteSpan(data_.data() + kIpHeaderSize + 8, DatagramSize() - kIpHeaderSize - 8),
          UdpPseudoHeaderSum()));
  uint16_t want_udp = static_cast<uint16_t>(~FoldSum(udp_partial));
  if (want_udp == 0) {
    want_udp = 0xffff;  // transmit form of computed zero
  }
  return stored_udp == want_udp;
}

void Packet::RewriteField(size_t offset, ByteSpan new_bytes, bool in_udp_pseudo_header) {
  ByteSpan old_bytes(data_.data() + offset, new_bytes.size());

  // IP header checksum covers only the IP header.
  if (offset < kIpHeaderSize) {
    const uint16_t new_ip =
        IncrementalChecksumUpdate(ip_checksum(), old_bytes, new_bytes);
    PutU16(&data_[10], new_ip);
  }
  // UDP checksum covers the pseudo-header (addresses) and the UDP segment.
  // A stored zero means "no checksum" (RFC 768) — nothing to maintain — and
  // an incremental result of zero must be written in its 0xFFFF transmit
  // form, or the packet would claim to carry no checksum at all.
  if (offset >= kIpHeaderSize || in_udp_pseudo_header) {
    const uint16_t stored_udp = udp_checksum();
    if (stored_udp != 0) {
      uint16_t new_udp = IncrementalChecksumUpdate(stored_udp, old_bytes, new_bytes);
      if (new_udp == 0) {
        new_udp = 0xffff;
      }
      PutU16(&data_[kIpHeaderSize + 6], new_udp);
    }
  }

  std::copy(new_bytes.begin(), new_bytes.end(), data_.begin() + static_cast<ptrdiff_t>(offset));
}

void Packet::RewriteBytes(size_t offset, ByteSpan new_bytes) {
  SLICE_CHECK(offset >= kPacketHeaderSize);  // headers go through RewriteSrc/Dst
  SLICE_CHECK(offset % 2 == 0);
  SLICE_CHECK(new_bytes.size() % 2 == 0);
  SLICE_CHECK(offset + new_bytes.size() <= DatagramSize());  // trailer is off-limits
  RewriteField(offset, new_bytes, /*in_udp_pseudo_header=*/false);
}

void Packet::RewriteSrc(Endpoint new_src) {
  uint8_t addr[4];
  PutU32(addr, new_src.addr);
  RewriteField(12, ByteSpan(addr, 4), /*in_udp_pseudo_header=*/true);
  uint8_t port[2];
  PutU16(port, new_src.port);
  RewriteField(kIpHeaderSize, ByteSpan(port, 2), /*in_udp_pseudo_header=*/false);
}

void Packet::RewriteDst(Endpoint new_dst) {
  uint8_t addr[4];
  PutU32(addr, new_dst.addr);
  RewriteField(16, ByteSpan(addr, 4), /*in_udp_pseudo_header=*/true);
  uint8_t port[2];
  PutU16(port, new_dst.port);
  RewriteField(kIpHeaderSize + 2, ByteSpan(port, 2), /*in_udp_pseudo_header=*/false);
}

}  // namespace slice
