// Recycled packet buffers for the zero-allocation forwarding path.
//
// Every simulated packet used to heap-allocate its byte vector; at millions
// of forwarded requests per experiment that allocation (plus the matching
// free) dominates the non-decode cost of the µproxy fast path. The pool keeps
// a freelist of fixed-capacity buffers sized for a jumbo frame plus the trace
// trailer, so steady-state forwarding acquires and releases buffers without
// touching the heap.
//
// The sim is single-threaded, so one process-wide pool serves every host; the
// class itself carries no global state and per-host instances work too (the
// Table 3 bench uses a private pool to isolate its counters).
//
// Lifecycle contract (DESIGN.md §7): Packet owns its buffer and returns it to
// the default pool on destruction; copies deep-copy (slow paths only), moves
// transfer the buffer. Recycling is capacity-gated — undersized external
// buffers and oversized jumbo payloads are simply freed — so the pool's
// footprint is bounded by kMaxFreeBuffers * buffer capacity.
#ifndef SLICE_NET_PACKET_POOL_H_
#define SLICE_NET_PACKET_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"

namespace slice {

class PacketPool {
 public:
  // Jumbo frame (9KB) + packet headers + trace trailer + slack, so attaching
  // a trace trailer to a full-size datagram never reallocates.
  static constexpr size_t kBufferCapacity = 9 * 1024 + 256;
  // Buffers above this capacity (100KB+ jumbo bulk writes) are freed rather
  // than hoarded; below kBufferCapacity they are too small to guarantee the
  // no-realloc invariant and are likewise dropped.
  static constexpr size_t kMaxRecycleCapacity = 256 * 1024;
  static constexpr size_t kMaxFreeBuffers = 256;

  PacketPool() { free_.reserve(kMaxFreeBuffers); }

  // Returns a buffer resized to `size` with capacity >= max(size +
  // trailer slack, kBufferCapacity). Recycles from the freelist when enabled.
  Bytes Acquire(size_t size);

  // Takes ownership of a dead packet's buffer; recycles it when it meets the
  // capacity gate and the freelist has room, frees it otherwise.
  void Release(Bytes&& buf);

  size_t free_buffers() const { return free_.size(); }
  uint64_t acquires() const { return acquires_; }
  uint64_t recycle_hits() const { return recycle_hits_; }
  uint64_t releases() const { return releases_; }

  // Process-wide pool used by Packet's builders and destructor.
  static PacketPool& Default();

  // Test hook: with pooling disabled, Acquire always allocates fresh and
  // Release always frees — byte-for-byte the pre-pool allocation behavior.
  // The determinism tests run the same seed both ways and require identical
  // trace/metrics/flight hashes.
  static void SetEnabled(bool enabled);
  static bool Enabled();

 private:
  std::vector<Bytes> free_;
  uint64_t acquires_ = 0;
  uint64_t recycle_hits_ = 0;
  uint64_t releases_ = 0;
};

}  // namespace slice

#endif  // SLICE_NET_PACKET_POOL_H_
