// Simulated switched LAN. Hosts attach at addresses; each host has NIC
// transmit/receive serialization at the link rate, packets cross the switch
// with a fixed store-and-forward latency, and optional loss injection models
// drops (which end-to-end RPC retransmission must mask, paper §2.1).
//
// A PacketTap can be interposed on a host's network path — this is where the
// Slice µproxy lives. The tap sees every outbound packet before the network
// and every inbound packet before the host, and may forward, rewrite, absorb,
// or originate packets, mirroring the paper's "request switching filter
// interposed along each client's network path".
#ifndef SLICE_NET_NETWORK_H_
#define SLICE_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/net/packet.h"
#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sim/event_queue.h"

namespace slice {

struct NetworkParams {
  double link_gbit_per_s = 1.0;   // per-host NIC rate
  double switch_latency_us = 30;  // store-and-forward hop
  double loss_rate = 0.0;         // independent per-packet drop probability
  uint64_t loss_seed = 42;
};

// Directional (src→dst) fault shaping on one link, installed by the chaos
// engine (src/chaos). A shaped link can be blocked outright (partition),
// lose packets i.i.d. or in Gilbert-Elliott bursts, and/or add latency
// (gray link). Directionality is the point: an asymmetric partition blocks
// src→dst while dst→src still flows, which is the case that confuses
// heartbeat-based failure detectors the most.
struct LinkShape {
  bool blocked = false;       // full partition: every packet dropped
  double loss = 0.0;          // i.i.d. drop probability
  double burst_loss = 0.0;    // drop probability while in the bad burst state
  double p_enter = 0.0;       // per-packet good→bad transition probability
  double p_exit = 1.0;        // per-packet bad→good transition probability
  SimTime extra_latency = 0;  // added on top of the switch hop
  bool bad = false;           // current Gilbert-Elliott state (engine-owned)
};

// Interposition point on one host's network path.
class PacketTap {
 public:
  virtual ~PacketTap() = default;

  // Called for packets the host is sending. Implementations call
  // Network::Inject to place (possibly rewritten) packets on the wire.
  virtual void HandleOutbound(Packet&& pkt) = 0;
  // Called for packets arriving for the host. Implementations call
  // Network::DeliverLocal to pass packets up to the host.
  virtual void HandleInbound(Packet&& pkt) = 0;
  // Called with a whole delivery flight: every packet in `pkts` arrived for
  // this host at the same instant (their drains coalesced into one event
  // dispatch). The default peels them one at a time, so taps that don't
  // batch behave exactly as before; the µproxy overrides this to hoist
  // per-dispatch work out of the per-packet loop. Overrides must consume
  // every packet and must preserve in-order processing.
  virtual void HandleInboundBatch(std::span<Packet> pkts) {
    for (Packet& p : pkts) {
      HandleInbound(std::move(p));
    }
  }
};

class Network {
 public:
  using Handler = std::function<void(Packet&&)>;

  Network(EventQueue& queue, NetworkParams params);

  // Attaches a host. `handler` receives packets addressed to `addr`.
  void Attach(NetAddr addr, Handler handler);
  void Detach(NetAddr addr);
  bool IsAttached(NetAddr addr) const { return hosts_.contains(addr); }

  // Installs/removes a tap on a host's path. At most one tap per host.
  void InstallTap(NetAddr addr, PacketTap* tap);
  void RemoveTap(NetAddr addr);

  // Host send path: applies the outbound tap (if any), then puts the packet
  // on the wire.
  void Send(Packet&& pkt);

  // Tap API: places a packet on the wire bypassing the sender-side tap.
  void Inject(Packet&& pkt);
  // Tap API: delivers a packet up to the local host, bypassing the inbound
  // tap. Used by taps to hand accepted packets to their host.
  void DeliverLocal(NetAddr addr, Packet&& pkt);

  // Deferred tap API (allocation-free): the packet rides the flight heap
  // until `ready` (e.g. the µproxy's CPU-done time) and then enters the wire
  // / the local host, replacing the make_shared<Packet>+closure idiom. A
  // `guard` that reads false at dispatch drops the packet silently — the
  // originating tap died in the meantime.
  void InjectAt(Packet&& pkt, SimTime ready, std::shared_ptr<const bool> guard = nullptr);
  void DeliverLocalAt(NetAddr addr, Packet&& pkt, SimTime ready,
                      std::shared_ptr<const bool> guard = nullptr);
  // Deferred host send (allocation-free): at `ready` the packet enters the
  // normal Send path — outbound tap first, then the wire. This is the RPC
  // server's deferred reply: the encoded reply moves into a pooled packet
  // buffer immediately and rides the flight heap to its service-done
  // instant, replacing a heap-allocated ScheduleAt closure.
  void SendAt(Packet&& pkt, SimTime ready, std::shared_ptr<const bool> guard = nullptr);

  // A/B switch for flight-batched tap delivery (determinism harness: runs
  // with batching on and off must produce byte-identical artifacts).
  static void SetDeliveryBatching(bool enabled) { batching_enabled_ = enabled; }
  static bool delivery_batching() { return batching_enabled_; }

  // Marks a host failed: its packets are dropped silently until revived.
  // Models server crashes for failover experiments.
  void SetHostFailed(NetAddr addr, bool failed);
  bool IsHostFailed(NetAddr addr) const { return failed_.contains(addr); }

  void set_loss_rate(double rate) { params_.loss_rate = rate; }

  // Chaos shaping (src/chaos): installs/clears a directional src→dst fault
  // shape. Shaped drops are logged as kPacketDrop with detail "partition"
  // or "chaos_loss" and consume a dedicated RNG stream, so enabling chaos
  // never perturbs the base loss model's draw sequence.
  void SetLinkShape(NetAddr src, NetAddr dst, const LinkShape& shape);
  void ClearLinkShape(NetAddr src, NetAddr dst);
  void ClearAllLinkShapes() { link_shapes_.clear(); }
  size_t num_shaped_links() const { return link_shapes_.size(); }

  // Gray NIC: every packet to or from `addr` pays `delay` extra wire
  // latency (slow-but-alive NIC). delay == 0 clears.
  void SetHostExtraDelay(NetAddr addr, SimTime delay);

  // Observability: when set, packets carrying a trace trailer get per-hop
  // wire/queue spans and drop markers recorded (src/obs).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  // Metrics plane: registers per-host NIC instruments (packet/byte counters
  // on the hot path, busy-time and backlog providers polled at scrape time)
  // for every currently attached host and every host attached afterwards.
  void set_metrics(obs::Metrics* metrics);
  obs::Metrics* metrics() { return metrics_; }

  // Event log: every dropped packet (loss model or dead endpoint) is
  // recorded with its trace id, so the flight recorder can explain lost
  // requests.
  void set_eventlog(obs::EventLog* log) { eventlog_ = log; }
  obs::EventLog* eventlog() { return eventlog_; }

  // Profiler: per-host wire/queue sim-time charges at the NIC serialization
  // points. Each host caches its ledger pointer, so a steady-state charge is
  // one branch + one add (no map lookup on the packet path).
  void set_profiler(obs::Profiler* profiler);
  obs::Profiler* profiler() { return profiler_; }
  // Busy-provider support: adds every host's NIC busy time (tx+rx) into
  // `out`, the independent reference the ledger coverage is checked against.
  void CollectNicBusy(std::map<uint32_t, uint64_t>* out) const;

  EventQueue& queue() { return queue_; }
  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Host {
    Handler handler;
    PacketTap* tap = nullptr;
    BusyResource tx;
    BusyResource rx;
    // Registry-owned instruments (stable heap slots); null when metrics are
    // off, so the hot path pays one branch and nothing else.
    obs::Counter* m_pkts_tx = nullptr;
    obs::Counter* m_bytes_tx = nullptr;
    obs::Counter* m_pkts_rx = nullptr;
    obs::Counter* m_pkts_dropped = nullptr;
    // Cached profiler ledger (null when profiling is off).
    uint64_t* prof_ledger = nullptr;
  };

  // In-flight packets, ordered exactly like the event queue orders their
  // paired drain events. Every PushFlight schedules one drain for this
  // network at the flight's due time; every drain dispatch (or absorption)
  // processes exactly one flight. The two sequences are order-isomorphic —
  // (due, seq) here, (when, seq) in the queue, both seq counters assigned at
  // the same call site — so the k-th drain always finds its own flight on
  // top of this heap. Same-instant arrivals therefore coalesce into one
  // event dispatch (AbsorbNextDrain) without any observable reordering.
  enum class FlightStage : uint8_t {
    kArrive,   // switch hop done; acquire receiver NIC
    kDeliver,  // receiver serialization done; hand to tap/handler
    kInject,   // tap-deferred wire entry (InjectAt)
    kLocal,    // tap-deferred local delivery (DeliverLocalAt)
    kSend,     // deferred host send (SendAt): outbound tap, then the wire
  };
  struct Flight {
    SimTime due = 0;
    uint64_t seq = 0;
    FlightStage stage = FlightStage::kArrive;
    SimTime wire = 0;        // serialization time, reused for the rx side
    NetAddr local_addr = 0;  // kLocal destination
    obs::TraceContext ctx;
    std::shared_ptr<const bool> guard;  // kInject/kLocal liveness
    Packet pkt;
  };
  struct FlightLater {
    bool operator()(const Flight& a, const Flight& b) const {
      if (a.due != b.due) {
        return a.due > b.due;
      }
      return a.seq > b.seq;
    }
  };

  static void DrainThunk(void* sink);
  void DrainFlights();
  void ProcessOneFlight();
  // Assigns the flight's seq, schedules its paired drain, and enqueues it.
  void PushFlight(Flight&& f);

  void Transmit(Packet&& pkt);
  void RegisterHostMetrics(NetAddr addr);
  void RegisterHostProfiler(NetAddr addr);

  static uint64_t LinkKey(NetAddr src, NetAddr dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }
  // Returns the drop reason ("partition"/"chaos_loss") for this packet, or
  // nullptr to let it pass; accumulates chaos latency into `extra`.
  const char* ApplyChaosShaping(NetAddr src, NetAddr dst, SimTime* extra);

  EventQueue& queue_;
  NetworkParams params_;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  double ns_per_byte_;
  std::unordered_map<NetAddr, Host> hosts_;
  std::unordered_map<NetAddr, bool> failed_;
  std::unordered_map<uint64_t, LinkShape> link_shapes_;  // LinkKey(src,dst)
  std::unordered_map<NetAddr, SimTime> host_extra_delay_;
  std::priority_queue<Flight, std::vector<Flight>, FlightLater> flights_;
  uint64_t flight_seq_ = 0;
  // Scratch for flight-batched tap delivery (capacity reused across
  // dispatches; never touched re-entrantly — tap handlers only push new
  // flights, they cannot re-enter the drain).
  std::vector<Packet> batch_;
  static bool batching_enabled_;
  Rng loss_rng_;
  Rng chaos_rng_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace slice

#endif  // SLICE_NET_NETWORK_H_
