// Simulated switched LAN. Hosts attach at addresses; each host has NIC
// transmit/receive serialization at the link rate, packets cross the switch
// with a fixed store-and-forward latency, and optional loss injection models
// drops (which end-to-end RPC retransmission must mask, paper §2.1).
//
// A PacketTap can be interposed on a host's network path — this is where the
// Slice µproxy lives. The tap sees every outbound packet before the network
// and every inbound packet before the host, and may forward, rewrite, absorb,
// or originate packets, mirroring the paper's "request switching filter
// interposed along each client's network path".
#ifndef SLICE_NET_NETWORK_H_
#define SLICE_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/net/packet.h"
#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/event_queue.h"

namespace slice {

struct NetworkParams {
  double link_gbit_per_s = 1.0;   // per-host NIC rate
  double switch_latency_us = 30;  // store-and-forward hop
  double loss_rate = 0.0;         // independent per-packet drop probability
  uint64_t loss_seed = 42;
};

// Interposition point on one host's network path.
class PacketTap {
 public:
  virtual ~PacketTap() = default;

  // Called for packets the host is sending. Implementations call
  // Network::Inject to place (possibly rewritten) packets on the wire.
  virtual void HandleOutbound(Packet&& pkt) = 0;
  // Called for packets arriving for the host. Implementations call
  // Network::DeliverLocal to pass packets up to the host.
  virtual void HandleInbound(Packet&& pkt) = 0;
};

class Network {
 public:
  using Handler = std::function<void(Packet&&)>;

  Network(EventQueue& queue, NetworkParams params);

  // Attaches a host. `handler` receives packets addressed to `addr`.
  void Attach(NetAddr addr, Handler handler);
  void Detach(NetAddr addr);
  bool IsAttached(NetAddr addr) const { return hosts_.contains(addr); }

  // Installs/removes a tap on a host's path. At most one tap per host.
  void InstallTap(NetAddr addr, PacketTap* tap);
  void RemoveTap(NetAddr addr);

  // Host send path: applies the outbound tap (if any), then puts the packet
  // on the wire.
  void Send(Packet&& pkt);

  // Tap API: places a packet on the wire bypassing the sender-side tap.
  void Inject(Packet&& pkt);
  // Tap API: delivers a packet up to the local host, bypassing the inbound
  // tap. Used by taps to hand accepted packets to their host.
  void DeliverLocal(NetAddr addr, Packet&& pkt);

  // Marks a host failed: its packets are dropped silently until revived.
  // Models server crashes for failover experiments.
  void SetHostFailed(NetAddr addr, bool failed);
  bool IsHostFailed(NetAddr addr) const { return failed_.contains(addr); }

  void set_loss_rate(double rate) { params_.loss_rate = rate; }

  // Observability: when set, packets carrying a trace trailer get per-hop
  // wire/queue spans and drop markers recorded (src/obs).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  // Metrics plane: registers per-host NIC instruments (packet/byte counters
  // on the hot path, busy-time and backlog providers polled at scrape time)
  // for every currently attached host and every host attached afterwards.
  void set_metrics(obs::Metrics* metrics);
  obs::Metrics* metrics() { return metrics_; }

  // Event log: every dropped packet (loss model or dead endpoint) is
  // recorded with its trace id, so the flight recorder can explain lost
  // requests.
  void set_eventlog(obs::EventLog* log) { eventlog_ = log; }
  obs::EventLog* eventlog() { return eventlog_; }

  EventQueue& queue() { return queue_; }
  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Host {
    Handler handler;
    PacketTap* tap = nullptr;
    BusyResource tx;
    BusyResource rx;
    // Registry-owned instruments (stable heap slots); null when metrics are
    // off, so the hot path pays one branch and nothing else.
    obs::Counter* m_pkts_tx = nullptr;
    obs::Counter* m_bytes_tx = nullptr;
    obs::Counter* m_pkts_rx = nullptr;
    obs::Counter* m_pkts_dropped = nullptr;
  };

  void Transmit(Packet&& pkt);
  void RegisterHostMetrics(NetAddr addr);

  EventQueue& queue_;
  NetworkParams params_;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  double ns_per_byte_;
  std::unordered_map<NetAddr, Host> hosts_;
  std::unordered_map<NetAddr, bool> failed_;
  Rng loss_rng_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace slice

#endif  // SLICE_NET_NETWORK_H_
