#include "src/net/network.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/logging.h"

namespace slice {

bool Network::batching_enabled_ = true;

Network::Network(EventQueue& queue, NetworkParams params)
    : queue_(queue),
      params_(params),
      ns_per_byte_(8.0 / params.link_gbit_per_s),
      loss_rng_(params.loss_seed),
      // Dedicated stream: chaos draws must not advance the base loss model's
      // sequence (same seed with chaos off stays byte-identical).
      chaos_rng_(params.loss_seed ^ 0x9e3779b97f4a7c15ULL) {}

void Network::SetLinkShape(NetAddr src, NetAddr dst, const LinkShape& shape) {
  link_shapes_[LinkKey(src, dst)] = shape;
}

void Network::ClearLinkShape(NetAddr src, NetAddr dst) {
  link_shapes_.erase(LinkKey(src, dst));
}

void Network::SetHostExtraDelay(NetAddr addr, SimTime delay) {
  if (delay == 0) {
    host_extra_delay_.erase(addr);
  } else {
    host_extra_delay_[addr] = delay;
  }
}

const char* Network::ApplyChaosShaping(NetAddr src, NetAddr dst, SimTime* extra) {
  if (!host_extra_delay_.empty()) {
    if (auto it = host_extra_delay_.find(src); it != host_extra_delay_.end()) {
      *extra += it->second;
    }
    if (auto it = host_extra_delay_.find(dst); it != host_extra_delay_.end()) {
      *extra += it->second;
    }
  }
  if (link_shapes_.empty()) {
    return nullptr;
  }
  auto it = link_shapes_.find(LinkKey(src, dst));
  if (it == link_shapes_.end()) {
    return nullptr;
  }
  LinkShape& shape = it->second;
  if (shape.blocked) {
    return "partition";
  }
  if (shape.p_enter > 0) {  // advance the Gilbert-Elliott state per packet
    if (shape.bad) {
      if (chaos_rng_.NextBool(shape.p_exit)) {
        shape.bad = false;
      }
    } else if (chaos_rng_.NextBool(shape.p_enter)) {
      shape.bad = true;
    }
  }
  const double p = shape.loss + (shape.bad ? shape.burst_loss : 0.0);
  if (p > 0 && chaos_rng_.NextBool(p < 1.0 ? p : 1.0)) {
    return "chaos_loss";
  }
  *extra += shape.extra_latency;
  return nullptr;
}

void Network::Attach(NetAddr addr, Handler handler) {
  SLICE_CHECK(!hosts_.contains(addr));
  hosts_[addr].handler = std::move(handler);
  RegisterHostMetrics(addr);
  RegisterHostProfiler(addr);
}

void Network::set_metrics(obs::Metrics* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr || !metrics_->enabled()) {
    return;
  }
  // Back-fill hosts attached before the metrics hub arrived, in address
  // order (registry creation order is irrelevant to the sorted exports, but
  // deterministic iteration costs nothing).
  std::vector<NetAddr> addrs;
  addrs.reserve(hosts_.size());
  for (const auto& [addr, host] : hosts_) {
    addrs.push_back(addr);
  }
  std::sort(addrs.begin(), addrs.end());
  for (const NetAddr addr : addrs) {
    RegisterHostMetrics(addr);
  }
}

void Network::RegisterHostMetrics(NetAddr addr) {
  if (metrics_ == nullptr || !metrics_->enabled()) {
    return;
  }
  auto it = hosts_.find(addr);
  if (it == hosts_.end()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics_->Registry(addr);
  Host& host = it->second;
  host.m_pkts_tx = reg.GetCounter("net_pkts_tx");
  host.m_bytes_tx = reg.GetCounter("net_bytes_tx");
  host.m_pkts_rx = reg.GetCounter("net_pkts_rx");
  host.m_pkts_dropped = reg.GetCounter("net_pkts_dropped");
  // NIC serialization time and backlog come straight from the BusyResources.
  // Providers re-find the host by address each poll — the unordered_map may
  // rehash as hosts attach, so captured element pointers would dangle. A
  // detached host simply reads 0 from then on.
  reg.GetCounter("net_nic_tx_busy_ns")->SetProvider([this, addr]() -> uint64_t {
    const auto host_it = hosts_.find(addr);
    return host_it == hosts_.end()
               ? 0
               : static_cast<uint64_t>(host_it->second.tx.total_busy_time());
  });
  reg.GetCounter("net_nic_rx_busy_ns")->SetProvider([this, addr]() -> uint64_t {
    const auto host_it = hosts_.find(addr);
    return host_it == hosts_.end()
               ? 0
               : static_cast<uint64_t>(host_it->second.rx.total_busy_time());
  });
  reg.GetGauge("net_nic_tx_backlog_ns")->SetProvider([this, addr]() -> int64_t {
    const auto host_it = hosts_.find(addr);
    if (host_it == hosts_.end()) {
      return 0;
    }
    const auto backlog = static_cast<int64_t>(host_it->second.tx.busy_until()) -
                         static_cast<int64_t>(queue_.now());
    return backlog > 0 ? backlog : 0;
  });
}

void Network::set_profiler(obs::Profiler* profiler) {
  profiler_ = profiler;
  std::vector<NetAddr> addrs;
  addrs.reserve(hosts_.size());
  for (const auto& [addr, host] : hosts_) {
    addrs.push_back(addr);
  }
  std::sort(addrs.begin(), addrs.end());
  for (const NetAddr addr : addrs) {
    RegisterHostProfiler(addr);
  }
}

void Network::RegisterHostProfiler(NetAddr addr) {
  auto it = hosts_.find(addr);
  if (it == hosts_.end()) {
    return;
  }
  it->second.prof_ledger = profiler_ != nullptr ? profiler_->LedgerFor(addr) : nullptr;
}

void Network::CollectNicBusy(std::map<uint32_t, uint64_t>* out) const {
  for (const auto& [addr, host] : hosts_) {
    (*out)[addr] += static_cast<uint64_t>(host.tx.total_busy_time()) +
                    static_cast<uint64_t>(host.rx.total_busy_time());
  }
}

void Network::Detach(NetAddr addr) { hosts_.erase(addr); }

void Network::InstallTap(NetAddr addr, PacketTap* tap) {
  auto it = hosts_.find(addr);
  SLICE_CHECK(it != hosts_.end());
  SLICE_CHECK(it->second.tap == nullptr);
  it->second.tap = tap;
}

void Network::RemoveTap(NetAddr addr) {
  auto it = hosts_.find(addr);
  if (it != hosts_.end()) {
    it->second.tap = nullptr;
  }
}

void Network::SetHostFailed(NetAddr addr, bool failed) {
  if (failed) {
    failed_[addr] = true;
  } else {
    failed_.erase(addr);
  }
}

void Network::Send(Packet&& pkt) {
  auto it = hosts_.find(pkt.src_addr());
  if (it != hosts_.end() && it->second.tap != nullptr) {
    it->second.tap->HandleOutbound(std::move(pkt));
    return;
  }
  Transmit(std::move(pkt));
}

void Network::Inject(Packet&& pkt) { Transmit(std::move(pkt)); }

void Network::Transmit(Packet&& pkt) {
  // Span context, if the packet carries one and an observer wants it.
  obs::TraceContext ctx;
  if (tracer_ != nullptr || eventlog_ != nullptr) {
    pkt.PeekTrace(&ctx.trace_id, &ctx.span_id);
  }

  if (failed_.contains(pkt.src_addr())) {
    ++packets_dropped_;
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(pkt.src_addr(), ctx, "drop:src_dead", queue_.now());
    }
    obs::LogEvent(eventlog_, pkt.src_addr(), queue_.now(), obs::EventSev::kWarn,
                  obs::EventCat::kNet, obs::EventCode::kPacketDrop, ctx.trace_id, "src_dead",
                  {{"dst", pkt.dst_addr()}, {"bytes", static_cast<int64_t>(pkt.size())}});
    return;
  }
  auto src_it = hosts_.find(pkt.src_addr());
  if (src_it == hosts_.end()) {
    ++packets_dropped_;
    return;
  }

  ++packets_sent_;
  bytes_sent_ += pkt.size();
  obs::Inc(src_it->second.m_pkts_tx);
  obs::Inc(src_it->second.m_bytes_tx, pkt.size());

  if (params_.loss_rate > 0 && loss_rng_.NextBool(params_.loss_rate)) {
    ++packets_dropped_;
    obs::Inc(src_it->second.m_pkts_dropped);
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(pkt.src_addr(), ctx, "drop:loss", queue_.now());
    }
    obs::LogEvent(eventlog_, pkt.src_addr(), queue_.now(), obs::EventSev::kWarn,
                  obs::EventCat::kNet, obs::EventCode::kPacketDrop, ctx.trace_id, "loss",
                  {{"dst", pkt.dst_addr()}, {"bytes", static_cast<int64_t>(pkt.size())}});
    SLICE_DLOG << "net: dropping packet " << EndpointToString(pkt.src()) << " -> "
               << EndpointToString(pkt.dst());
    return;
  }

  // Chaos shaping (partitions, shaped loss, gray links) sits after the base
  // loss model and draws from its own RNG stream.
  SimTime chaos_latency = 0;
  if (const char* why = ApplyChaosShaping(pkt.src_addr(), pkt.dst_addr(), &chaos_latency);
      why != nullptr) {
    ++packets_dropped_;
    obs::Inc(src_it->second.m_pkts_dropped);
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(pkt.src_addr(), ctx,
                             std::strcmp(why, "partition") == 0 ? "drop:partition"
                                                                : "drop:chaos_loss",
                             queue_.now());
    }
    obs::LogEvent(eventlog_, pkt.src_addr(), queue_.now(), obs::EventSev::kWarn,
                  obs::EventCat::kNet, obs::EventCode::kPacketDrop, ctx.trace_id, why,
                  {{"dst", pkt.dst_addr()}, {"bytes", static_cast<int64_t>(pkt.size())}});
    return;
  }

  const SimTime wire = static_cast<SimTime>(static_cast<double>(pkt.size()) * ns_per_byte_);
  const SimTime tx_start = std::max(src_it->second.tx.busy_until(), queue_.now());
  const SimTime tx_done = src_it->second.tx.Acquire(queue_.now(), wire);
  obs::ChargeSim(src_it->second.prof_ledger, obs::LedgerCat::kQueue, tx_start - queue_.now());
  obs::ChargeSim(src_it->second.prof_ledger, obs::LedgerCat::kWire, wire);
  const SimTime arrival = tx_done + FromMicros(params_.switch_latency_us) + chaos_latency;
  if (tracer_ != nullptr && ctx.valid()) {
    const NetAddr src = pkt.src_addr();
    if (tx_start > queue_.now()) {
      tracer_->RecordSpan(src, ctx, obs::SpanCat::kQueue, "nic_tx_wait", queue_.now(),
                          tx_start);
    }
    // Transmit serialization plus the store-and-forward switch hop.
    tracer_->RecordSpan(src, ctx, obs::SpanCat::kWire, "wire_tx", tx_start, arrival);
  }

  // Receiver-side serialization is applied at arrival time; the packet rides
  // the flight heap instead of a heap-allocated closure capture.
  Flight f;
  f.due = arrival;
  f.stage = FlightStage::kArrive;
  f.wire = wire;
  f.ctx = ctx;
  f.pkt = std::move(pkt);
  PushFlight(std::move(f));
}

void Network::PushFlight(Flight&& f) {
  if (f.due < queue_.now()) {
    f.due = queue_.now();  // mirror the queue's clamp so pairing stays exact
  }
  f.seq = flight_seq_++;
  queue_.ScheduleDrainAt(f.due, &Network::DrainThunk, this);
  flights_.push(std::move(f));
}

void Network::DrainThunk(void* sink) { static_cast<Network*>(sink)->DrainFlights(); }

void Network::DrainFlights() {
  // One flight per paired drain; absorbing consumes further same-instant
  // drains for this network so a burst of simultaneous arrivals costs one
  // event dispatch instead of one each.
  do {
    ProcessOneFlight();
  } while (queue_.AbsorbNextDrain(this));
}

void Network::ProcessOneFlight() {
  SLICE_CHECK(!flights_.empty());
  Flight f = std::move(const_cast<Flight&>(flights_.top()));
  flights_.pop();
  SLICE_CHECK(f.due == queue_.now());

  switch (f.stage) {
    case FlightStage::kArrive: {
      const NetAddr dst = f.pkt.dst_addr();
      if (failed_.contains(dst)) {
        ++packets_dropped_;
        if (tracer_ != nullptr) {
          tracer_->RecordInstant(dst, f.ctx, "drop:dst_dead", queue_.now());
        }
        obs::LogEvent(eventlog_, dst, queue_.now(), obs::EventSev::kWarn, obs::EventCat::kNet,
                      obs::EventCode::kPacketDrop, f.ctx.trace_id, "dst_dead",
                      {{"src", f.pkt.src_addr()}, {"bytes", static_cast<int64_t>(f.pkt.size())}});
        return;
      }
      auto it = hosts_.find(dst);
      if (it == hosts_.end()) {
        ++packets_dropped_;
        return;
      }
      const SimTime rx_start = std::max(it->second.rx.busy_until(), queue_.now());
      const SimTime rx_done = it->second.rx.Acquire(queue_.now(), f.wire);
      obs::ChargeSim(it->second.prof_ledger, obs::LedgerCat::kQueue, rx_start - queue_.now());
      obs::ChargeSim(it->second.prof_ledger, obs::LedgerCat::kWire, f.wire);
      if (tracer_ != nullptr && f.ctx.valid()) {
        if (rx_start > queue_.now()) {
          tracer_->RecordSpan(dst, f.ctx, obs::SpanCat::kQueue, "nic_rx_wait", queue_.now(),
                              rx_start);
        }
        tracer_->RecordSpan(dst, f.ctx, obs::SpanCat::kWire, "wire_rx", rx_start, rx_done);
      }
      f.due = rx_done;
      f.stage = FlightStage::kDeliver;
      PushFlight(std::move(f));
      return;
    }
    case FlightStage::kDeliver: {
      const NetAddr addr = f.pkt.dst_addr();
      auto host_it = hosts_.find(addr);
      if (host_it == hosts_.end() || failed_.contains(addr)) {
        ++packets_dropped_;
        if (tracer_ != nullptr) {
          tracer_->RecordInstant(addr, f.ctx, "drop:dst_dead", queue_.now());
        }
        obs::LogEvent(eventlog_, addr, queue_.now(), obs::EventSev::kWarn, obs::EventCat::kNet,
                      obs::EventCode::kPacketDrop, f.ctx.trace_id, "dst_dead",
                      {{"src", f.pkt.src_addr()}, {"bytes", static_cast<int64_t>(f.pkt.size())}});
        return;
      }
      obs::Inc(host_it->second.m_pkts_rx);
      if (host_it->second.tap != nullptr) {
        if (batching_enabled_) {
          // Flight-at-a-time delivery: extend this dispatch over the run of
          // same-instant deliveries to the same tapped host. Each extension
          // first absorbs the flight's paired drain (keeping flights and
          // drains 1:1) and only then pops the flight; an interleaved
          // foreign event makes AbsorbNextDrain fail and ends the batch, so
          // global ordering is exactly what per-flight dispatch produced.
          // No handler runs during collection, so the host/failed state
          // checked above cannot change mid-batch.
          batch_.clear();
          batch_.push_back(std::move(f.pkt));
          while (!flights_.empty()) {
            const Flight& top = flights_.top();
            if (top.stage != FlightStage::kDeliver || top.due != queue_.now() ||
                top.pkt.dst_addr() != addr) {
              break;
            }
            if (!queue_.AbsorbNextDrain(this)) {
              break;
            }
            Flight g = std::move(const_cast<Flight&>(flights_.top()));
            flights_.pop();
            obs::Inc(host_it->second.m_pkts_rx);
            batch_.push_back(std::move(g.pkt));
          }
          host_it->second.tap->HandleInboundBatch(std::span<Packet>(batch_));
          batch_.clear();
        } else {
          host_it->second.tap->HandleInbound(std::move(f.pkt));
        }
      } else {
        host_it->second.handler(std::move(f.pkt));
      }
      return;
    }
    case FlightStage::kInject: {
      if (f.guard == nullptr || *f.guard) {
        Transmit(std::move(f.pkt));
      }
      return;
    }
    case FlightStage::kLocal: {
      if (f.guard == nullptr || *f.guard) {
        DeliverLocal(f.local_addr, std::move(f.pkt));
      }
      return;
    }
    case FlightStage::kSend: {
      if (f.guard == nullptr || *f.guard) {
        Send(std::move(f.pkt));
      }
      return;
    }
  }
}

void Network::InjectAt(Packet&& pkt, SimTime ready, std::shared_ptr<const bool> guard) {
  Flight f;
  f.due = ready;
  f.stage = FlightStage::kInject;
  f.guard = std::move(guard);
  f.pkt = std::move(pkt);
  PushFlight(std::move(f));
}

void Network::SendAt(Packet&& pkt, SimTime ready, std::shared_ptr<const bool> guard) {
  Flight f;
  f.due = ready;
  f.stage = FlightStage::kSend;
  f.guard = std::move(guard);
  f.pkt = std::move(pkt);
  PushFlight(std::move(f));
}

void Network::DeliverLocalAt(NetAddr addr, Packet&& pkt, SimTime ready,
                             std::shared_ptr<const bool> guard) {
  Flight f;
  f.due = ready;
  f.stage = FlightStage::kLocal;
  f.local_addr = addr;
  f.guard = std::move(guard);
  f.pkt = std::move(pkt);
  PushFlight(std::move(f));
}

void Network::DeliverLocal(NetAddr addr, Packet&& pkt) {
  auto it = hosts_.find(addr);
  if (it == hosts_.end()) {
    ++packets_dropped_;
    return;
  }
  it->second.handler(std::move(pkt));
}

}  // namespace slice
