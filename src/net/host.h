// A simulated host: one network address with a port demultiplexer, so
// multiple sockets (e.g. several client mounts, or a µproxy control port)
// can share the address.
#ifndef SLICE_NET_HOST_H_
#define SLICE_NET_HOST_H_

#include <functional>
#include <unordered_map>

#include "src/net/network.h"

namespace slice {

class Host {
 public:
  using SocketHandler = std::function<void(Packet&&)>;

  Host(Network& net, NetAddr addr) : net_(net), addr_(addr) {
    net_.Attach(addr_, [this](Packet&& pkt) { Dispatch(std::move(pkt)); });
  }
  ~Host() { net_.Detach(addr_); }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  NetAddr addr() const { return addr_; }
  Network& network() { return net_; }

  // Binds a handler to `port`; port 0 picks an ephemeral port. Returns the
  // bound port.
  NetPort Bind(NetPort port, SocketHandler handler) {
    if (port == 0) {
      while (sockets_.contains(next_ephemeral_)) {
        ++next_ephemeral_;
      }
      port = next_ephemeral_++;
    }
    SLICE_CHECK(!sockets_.contains(port));
    sockets_[port] = std::move(handler);
    return port;
  }

  void Unbind(NetPort port) { sockets_.erase(port); }

  void Send(Packet&& pkt) { net_.Send(std::move(pkt)); }

  uint64_t undeliverable() const { return undeliverable_; }

 private:
  void Dispatch(Packet&& pkt) {
    auto it = sockets_.find(pkt.dst_port());
    if (it == sockets_.end()) {
      ++undeliverable_;  // no ICMP in this simulation; silently dropped
      return;
    }
    it->second(std::move(pkt));
  }

  Network& net_;
  NetAddr addr_;
  std::unordered_map<NetPort, SocketHandler> sockets_;
  NetPort next_ephemeral_ = 32768;
  uint64_t undeliverable_ = 0;
};

}  // namespace slice

#endif  // SLICE_NET_HOST_H_
