#include "src/dir/dir_store.h"

namespace slice {

uint64_t NameFingerprint(const FileHandle& parent, std::string_view name) {
  Md5 ctx;
  ctx.Update(parent.bytes());
  ctx.Update(name);
  return Md5Fingerprint64(ctx.Finish());
}

uint64_t NameFingerprintById(uint64_t parent_fileid, std::string_view name) {
  uint8_t key[8];
  PutU64(key, parent_fileid);
  Md5 ctx;
  ctx.Update(ByteSpan(key, 8));
  ctx.Update(name);
  return Md5Fingerprint64(ctx.Finish());
}

Status DirStore::InsertEntry(uint64_t parent_id, const std::string& name,
                             const FileHandle& child) {
  auto [it, inserted] = chains_.emplace(ChainKey{parent_id, name}, NameCell{parent_id, name, child});
  if (!inserted) {
    return Status(StatusCode::kAlreadyExists, "dir: entry exists");
  }
  dir_index_[parent_id][name] = true;
  return OkStatus();
}

Result<FileHandle> DirStore::FindEntry(uint64_t parent_id, const std::string& name) const {
  const auto it = chains_.find(ChainKey{parent_id, name});
  if (it == chains_.end()) {
    return Status(StatusCode::kNotFound, "dir: no entry");
  }
  return it->second.child;
}

Status DirStore::EraseEntry(uint64_t parent_id, const std::string& name) {
  if (chains_.erase(ChainKey{parent_id, name}) == 0) {
    return Status(StatusCode::kNotFound, "dir: no entry");
  }
  auto dit = dir_index_.find(parent_id);
  if (dit != dir_index_.end()) {
    dit->second.erase(name);
    if (dit->second.empty()) {
      dir_index_.erase(dit);
    }
  }
  return OkStatus();
}

std::vector<NameCell> DirStore::ListDir(uint64_t dir_id) const {
  std::vector<NameCell> out;
  const auto dit = dir_index_.find(dir_id);
  if (dit == dir_index_.end()) {
    return out;
  }
  out.reserve(dit->second.size());
  for (const auto& [name, unused] : dit->second) {
    (void)unused;
    const auto cit = chains_.find(ChainKey{dir_id, name});
    SLICE_CHECK(cit != chains_.end());
    out.push_back(cit->second);
  }
  return out;
}

size_t DirStore::CountDir(uint64_t dir_id) const {
  const auto dit = dir_index_.find(dir_id);
  return dit == dir_index_.end() ? 0 : dit->second.size();
}

void DirStore::DropDirIndex(uint64_t dir_id) { dir_index_.erase(dir_id); }

Status DirStore::InsertAttr(uint64_t fileid, const Fattr3& attr) {
  auto [it, inserted] = attrs_.emplace(fileid, AttrCell{attr, {}});
  if (!inserted) {
    return Status(StatusCode::kAlreadyExists, "dir: attr cell exists");
  }
  return OkStatus();
}

AttrCell* DirStore::FindAttr(uint64_t fileid) {
  auto it = attrs_.find(fileid);
  return it == attrs_.end() ? nullptr : &it->second;
}

const AttrCell* DirStore::FindAttr(uint64_t fileid) const {
  const auto it = attrs_.find(fileid);
  return it == attrs_.end() ? nullptr : &it->second;
}

Status DirStore::EraseAttr(uint64_t fileid) {
  if (attrs_.erase(fileid) == 0) {
    return Status(StatusCode::kNotFound, "dir: no attr cell");
  }
  return OkStatus();
}

void DirStore::Clear() {
  chains_.clear();
  attrs_.clear();
  dir_index_.clear();
}

}  // namespace slice
