#include "src/dir/wal.h"

#include "src/common/logging.h"

namespace slice {

WriteAheadLog::WriteAheadLog(Host& host, EventQueue& queue, Endpoint backing_node,
                             FileHandle backing_object, WalParams params)
    : queue_(queue), client_(host, queue, backing_node), object_(backing_object),
      params_(params) {}

void WriteAheadLog::Append(ByteSpan record) {
  uint8_t len[4];
  PutU32(len, static_cast<uint32_t>(record.size()));
  buffer_.insert(buffer_.end(), len, len + 4);
  buffer_.insert(buffer_.end(), record.begin(), record.end());
  ++records_;
  ArmFlushTimer();
}

void WriteAheadLog::ArmFlushTimer() {
  if (timer_armed_) {
    return;
  }
  timer_armed_ = true;
  queue_.ScheduleAfter(params_.flush_interval, [this]() {
    timer_armed_ = false;
    Flush();
  });
}

void WriteAheadLog::Flush() {
  if (buffer_.empty()) {
    return;
  }
  Bytes batch = std::move(buffer_);
  buffer_.clear();
  const uint64_t offset = log_offset_;
  log_offset_ += batch.size();
  ++flushes_;
  client_.Write(object_, offset, batch, StableHow::kFileSync,
                [](Status st, const WriteRes& res) {
                  if (!st.ok() || res.status != Nfsstat3::kOk) {
                    SLICE_WLOG << "wal: flush failed: " << st.ToString();
                  }
                });
}

void WriteAheadLog::DiscardBuffered() { buffer_.clear(); }

void WriteAheadLog::Replay(std::function<void(ByteSpan)> on_record,
                           std::function<void(Status)> on_done) {
  ReplayChunk(0, Bytes{}, std::move(on_record), std::move(on_done));
}

void WriteAheadLog::ReplayChunk(uint64_t offset, Bytes carry,
                                std::function<void(ByteSpan)> on_record,
                                std::function<void(Status)> on_done) {
  client_.Read(
      object_, offset, params_.replay_chunk,
      [this, offset, carry = std::move(carry), on_record = std::move(on_record),
       on_done = std::move(on_done)](Status st, const ReadRes& res) mutable {
        if (!st.ok()) {
          on_done(st);
          return;
        }
        if (res.status != Nfsstat3::kOk) {
          on_done(Status(StatusCode::kInternal, "wal: replay read failed"));
          return;
        }
        carry.insert(carry.end(), res.data.begin(), res.data.end());

        // Parse complete records out of `carry`.
        size_t pos = 0;
        while (pos + 4 <= carry.size()) {
          const uint32_t len = GetU32(carry.data() + pos);
          if (pos + 4 + len > carry.size()) {
            break;
          }
          on_record(ByteSpan(carry.data() + pos + 4, len));
          pos += 4 + len;
        }
        carry.erase(carry.begin(), carry.begin() + static_cast<ptrdiff_t>(pos));

        if (res.eof || res.data.empty()) {
          // Everything stable has been replayed; continue appending after it.
          log_offset_ = offset + res.data.size();
          on_done(OkStatus());
          return;
        }
        ReplayChunk(offset + res.data.size(), std::move(carry), std::move(on_record),
                    std::move(on_done));
      });
}

}  // namespace slice
