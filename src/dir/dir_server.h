// Directory server: owns name entries and attribute cells with fixed
// placement, supporting both mkdir switching and name hashing (paper §3.2,
// §4.3). Cross-site operations (orphan mkdirs, cross-directory renames,
// link-count updates, scattered readdir) run over a peer-to-peer protocol.
//
// Peer calls execute as direct nested calls whose CPU and round-trip cost is
// charged to the simulation clock (see DESIGN.md, documented simplification);
// the client-visible path is always real packets.
//
// The server journals every mutation to a write-ahead log backed by the
// network storage array; Restart() recovers the full cell store by replay —
// the "dataless file manager" property of §2.3 (and goes beyond the paper's
// prototype, which left the recovery procedure unimplemented).
#ifndef SLICE_DIR_DIR_SERVER_H_
#define SLICE_DIR_DIR_SERVER_H_

#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "src/dir/dir_store.h"
#include "src/dir/wal.h"
#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_server.h"

namespace slice {

enum class NamePolicy : uint8_t { kMkdirSwitching = 0, kNameHashing = 1 };

// fileIDs embed the minting site in the top 16 bits — the "key placed in
// each newly minted file handle" that lets the µproxy and servers locate a
// cell's fixed placement from the handle alone.
inline uint32_t SiteOfFileid(uint64_t fileid) { return static_cast<uint32_t>(fileid >> 48); }
inline uint64_t MakeFileid(uint32_t site, uint64_t counter) {
  return (static_cast<uint64_t>(site) << 48) | counter;
}
constexpr uint64_t kRootFileid = 1;  // minted at site 0

// Logical routing-table size shared by µproxies and directory servers; name
// hashing maps a fingerprint to a logical slot first, then to a physical
// site, so both sides must agree on the slot count.
constexpr uint32_t kDefaultLogicalSlots = 64;

inline uint32_t NameHashSite(uint64_t fingerprint, uint32_t num_sites,
                             uint32_t logical_slots = kDefaultLogicalSlots) {
  return static_cast<uint32_t>((fingerprint % logical_slots) % num_sites);
}

struct DirServerParams {
  uint32_t site = 0;
  uint32_t num_sites = 1;
  uint32_t volume = 1;
  uint64_t volume_secret = 0;
  NamePolicy policy = NamePolicy::kMkdirSwitching;
  uint8_t default_replication = 1;
  double op_cpu_us = 150.0;   // local name-op CPU (saturation ~6000 ops/s w/ log)
  double peer_cpu_us = 60.0;  // extra CPU per cross-site leg
  double peer_rtt_us = 90.0;  // charged latency per peer round trip
  // WAL backing; if backing_node.addr == 0 logging is disabled.
  Endpoint backing_node;
  FileHandle backing_object;
  // Per-logical-slot op providers ("dir_slot07_ops", plus slot×tenant joint
  // counters when the metrics hub has tenants configured). Off by default:
  // pinned metrics goldens sum every registered counter, so the extra
  // providers must stay opt-in.
  bool slot_metrics = false;
};

class DirServer : public RpcServerNode {
 public:
  DirServer(Network& net, EventQueue& queue, NetAddr addr, DirServerParams params);

  // Wires up the peer-protocol targets; peers[i] owns logical site i.
  void SetPeers(std::vector<DirServer*> peers) { peers_ = std::move(peers); }

  const DirStore& store() const { return store_; }
  uint64_t cross_site_ops() const { return cross_site_ops_; }
  uint64_t local_ops() const { return local_ops_; }
  bool recovering() const { return recovering_; }
  uint64_t log_bytes() const { return wal_ ? wal_->bytes_logged() : 0; }
  FileHandle RootHandle() const;

  // Flushes the WAL immediately (clean shutdown in tests).
  void FlushLog() {
    if (wal_) {
      wal_->Flush();
    }
  }

  // WAL appends issued by a traced mutation join the request's trace.
  void set_tracer(obs::Tracer* tracer) override {
    RpcServerNode::set_tracer(tracer);
    if (wal_) {
      wal_->set_tracer(tracer);
    }
  }

  // Adds name-space op mix (per NFS procedure), misdirect, and WAL
  // instruments on top of the base server metrics.
  void set_metrics(obs::Metrics* metrics) override;

  // --- ensemble control-plane integration (src/mgmt) ---

  // Installs the manager's epoch-stamped view: slots[s] is the physical dir
  // index serving logical slot/site s, `my_physical` this server's index.
  // With a view installed, requests the view routes elsewhere are answered
  // kErrJukebox plus a misdirect notice to the client's µproxy control port
  // (lazy table distribution, paper §3.1).
  void SetMgmtView(uint64_t epoch, uint32_t my_physical, std::vector<uint32_t> slots);

  // Failover: replays the dead owner's WAL (an object in the storage array)
  // into this server's store — re-logging every record so the adopted state
  // survives this server's own crashes — then serves the site until
  // HandoffSite. Ops arriving mid-adoption get kErrJukebox; clients retry.
  void AdoptSite(uint32_t site, Endpoint wal_node, FileHandle wal_object,
                 std::function<void(Status)> done = nullptr);
  // Rebalance: moves the adopted site's cells back to the rejoined owner.
  // Both sides log each move, so the transfer survives either party's crash.
  void HandoffSite(uint32_t site, DirServer& target);

  // Hotspot re-stripe (name hashing only): moves the name entries of one
  // logical slot (fingerprint % num_slots == slot) to `target`, both sides
  // logged. Runs synchronously in the same sim instant as the table install
  // that rebinds the slot, so no request can observe the half-moved state.
  // Attribute cells stay put: they route by the creating site's low slots,
  // which a re-stripe never touches.
  void MigrateSlot(uint32_t slot, uint32_t num_slots, DirServer& target);

  // Holds client traffic (kErrJukebox) on a rejoined owner while the handoff
  // back to it is pending, so a fresh write can't land and then be clobbered
  // when the transfer drops stale site-owned cells.
  void BeginHandoffHold() { ++adopting_; }
  void EndHandoffHold() {
    if (adopting_ > 0) {
      --adopting_;
    }
  }

  bool adopting() const { return adopting_ > 0; }
  const std::set<uint32_t>& adopted_sites() const { return adopted_sites_; }
  uint64_t misdirects_answered() const { return misdirects_answered_; }
  uint32_t site() const { return params_.site; }
  uint64_t slot_ops(uint32_t slot) const {
    return slot < kDefaultLogicalSlots ? slot_ops_[slot] : 0;
  }

 protected:
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override;
  // Stashes the calling client so misdirect notices know where to go.
  void DispatchCall(const RpcMessageView& call, const Endpoint& client, ReplyFn done) override;
  void OnRestart() override;

 private:
  // --- logged primitive mutations (replayed on recovery) ---
  void ApplyInsertEntry(uint64_t parent, const std::string& name, const FileHandle& child,
                        bool log);
  void ApplyEraseEntry(uint64_t parent, const std::string& name, bool log);
  void ApplyUpsertAttr(uint64_t fileid, const Fattr3& attr, const std::string& symlink,
                       bool log);
  void ApplyEraseAttr(uint64_t fileid, bool log);
  // `relog` re-journals each replayed record into this server's own WAL
  // (used when adopting a dead peer's log).
  void ReplayRecord(ByteSpan record, bool relog = false);

  // --- misdirect detection against the installed mgmt view ---
  bool MisroutedByFileid(uint64_t fileid) const;
  bool MisroutedNameOp(const FileHandle& dir, const std::string& name) const;
  void MisdirectReply(NfsProc proc, XdrEncoder& reply);
  // Entry-owning site recomputed from stored cell fields (handoff scan).
  uint32_t EntrySiteById(uint64_t parent_id, const std::string& name) const;

  // --- peer protocol (direct calls; caller charges PeerCost) ---
  DirServer& Peer(uint32_t site) { return *peers_[site]; }
  // A site is local if it is ours, or if failover remapped the (dead) owner
  // to us — the ensemble points peers_[site] at the adopter.
  bool IsLocalSite(uint32_t site) const {
    if (site == params_.site || peers_.empty()) {
      return true;
    }
    const DirServer* owner = peers_[site % peers_.size()];
    return owner == this || owner == nullptr;
  }
  void ChargePeer(ServiceCost& cost);

  Status PeerInsertEntry(uint32_t site, uint64_t parent, const std::string& name,
                         const FileHandle& child, ServiceCost& cost);
  Status PeerEraseEntry(uint32_t site, uint64_t parent, const std::string& name,
                        ServiceCost& cost);
  // Adjusts a directory's attrs after adding/removing an entry.
  void TouchDirAttr(uint64_t dir_id, int entry_delta, int nlink_delta, ServiceCost& cost);
  // Adjusts a file's link count; erases the cell when it drops to zero.
  // Returns the resulting nlink.
  uint32_t AdjustNlink(uint64_t fileid, int delta, ServiceCost& cost);
  std::optional<Fattr3> GetAttrAnywhere(uint64_t fileid, ServiceCost& cost);

  // Entry-owning site for (parent, name) under the configured policy.
  uint32_t EntrySite(const FileHandle& parent, const std::string& name) const;
  // Request-time owner for a secondary name (rename target): the static
  // EntrySite unless the installed mgmt view re-bound the name's slot to a
  // different server (hotspot override).
  uint32_t OwnerSiteForEntry(const FileHandle& parent, const std::string& name) const;

  NfsTime Now() const;
  uint64_t MintFileid() { return MakeFileid(params_.site, next_counter_++); }
  FileHandle MintHandle(uint64_t fileid, FileType3 type) const;
  Fattr3 NewAttr(uint64_t fileid, FileType3 type) const;

  // --- NFS procedure handlers ---
  void HandleGetattr(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleSetattr(const SetattrArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleLookup(const DirOpArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleAccess(const AccessArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleReadlink(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleCreate(const CreateArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleMkdir(const MkdirArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleSymlink(const SymlinkArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleRemove(const DirOpArgs& args, bool rmdir, XdrEncoder& reply, ServiceCost& cost);
  void HandleRename(const RenameArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleLink(const LinkArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleReaddir(const ReaddirArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleFsstat(XdrEncoder& reply, ServiceCost& cost);
  void HandleFsinfo(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost);

  // Peer-visible internals used by the protocol above.
  friend class DirServerPeerAccess;

  DirServerParams params_;
  DirStore store_;
  std::vector<DirServer*> peers_;
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t next_counter_;
  bool recovering_ = false;
  uint64_t cross_site_ops_ = 0;
  uint64_t local_ops_ = 0;
  // Op mix indexed by NfsProc (always maintained — one array increment).
  uint64_t proc_counts_[kNfsProcCount] = {};
  // Per-logical-slot name-op counts (always maintained — one array add) and
  // the slot×tenant joint counts. The joint vector is sized by set_metrics
  // only when params_.slot_metrics is on and the hub has tenants; empty
  // otherwise, so the common path pays one empty() check.
  uint64_t slot_ops_[kDefaultLogicalSlots] = {};
  uint32_t slot_tenants_ = 0;
  std::vector<uint64_t> slot_tenant_ops_;  // index = slot * slot_tenants_ + tenant - 1
  void NoteSlotOp(const FileHandle& dir, std::string_view name, uint32_t tenant);

  // Control-plane view (empty slots = no manager; checks disabled).
  uint64_t mgmt_epoch_ = 0;
  uint32_t my_physical_ = 0;
  std::vector<uint32_t> mgmt_slots_;
  std::set<uint32_t> adopted_sites_;
  int adopting_ = 0;
  uint64_t misdirects_answered_ = 0;
  // One notice per (client, epoch) — the µproxy fetch is idempotent anyway.
  std::set<std::pair<NetAddr, uint64_t>> misdirect_notified_;
  Endpoint current_client_;
};

}  // namespace slice

#endif  // SLICE_DIR_DIR_SERVER_H_
