// Directory cell store: name entries and attribute cells on MD5-fingerprint
// hash chains (paper §4.3: "webs of linked fixed-size cells ... indexed by
// hash chains keyed by an MD5 hash fingerprint on the parent file handle and
// name").
//
// Name entries and attribute cells for a directory may live on different
// servers (cross-site links); this store only manages one server's resident
// cells. Placement policy lives in the µproxy and DirServer.
#ifndef SLICE_DIR_DIR_STORE_H_
#define SLICE_DIR_DIR_STORE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/md5.h"
#include "src/common/status.h"
#include "src/nfs/nfs_types.h"

namespace slice {

// Fingerprint for a (parent directory, name) pair: the hash-chain key and
// the name-hashing routing key. Shared by µproxy and directory servers.
uint64_t NameFingerprint(const FileHandle& parent, std::string_view name);
uint64_t NameFingerprintById(uint64_t parent_fileid, std::string_view name);

struct NameCell {
  uint64_t parent_id = 0;
  std::string name;
  FileHandle child;
};

struct AttrCell {
  Fattr3 attr;
  std::string symlink_target;  // kLnk cells only
};

class DirStore {
 public:
  // --- name entries ---
  Status InsertEntry(uint64_t parent_id, const std::string& name, const FileHandle& child);
  Result<FileHandle> FindEntry(uint64_t parent_id, const std::string& name) const;
  Status EraseEntry(uint64_t parent_id, const std::string& name);
  // Entries of `dir_id` resident on this server, name-ordered.
  std::vector<NameCell> ListDir(uint64_t dir_id) const;
  size_t CountDir(uint64_t dir_id) const;
  // Removes the per-directory index for an (empty) directory.
  void DropDirIndex(uint64_t dir_id);

  // --- attribute cells ---
  Status InsertAttr(uint64_t fileid, const Fattr3& attr);
  AttrCell* FindAttr(uint64_t fileid);
  const AttrCell* FindAttr(uint64_t fileid) const;
  Status EraseAttr(uint64_t fileid);

  size_t entry_count() const { return chains_.size(); }
  size_t attr_count() const { return attrs_.size(); }
  void Clear();

  // Full scans, used by failover handoff to find cells owned by a site.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [key, cell] : chains_) {
      fn(cell);
    }
  }
  template <typename Fn>
  void ForEachAttr(Fn&& fn) const {
    for (const auto& [fileid, cell] : attrs_) {
      fn(fileid, cell);
    }
  }

 private:
  struct ChainKey {
    uint64_t parent_id;
    std::string name;
    bool operator==(const ChainKey&) const = default;
  };
  struct ChainKeyHash {
    size_t operator()(const ChainKey& k) const {
      return static_cast<size_t>(NameFingerprintById(k.parent_id, k.name));
    }
  };

  std::unordered_map<ChainKey, NameCell, ChainKeyHash> chains_;
  std::unordered_map<uint64_t, AttrCell> attrs_;
  // Per-directory name index for readdir (cookie = rank within this map).
  std::unordered_map<uint64_t, std::map<std::string, bool>> dir_index_;
};

}  // namespace slice

#endif  // SLICE_DIR_DIR_STORE_H_
