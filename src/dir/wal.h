// Write-ahead log for Slice file managers (paper §2.3): managers are
// "dataless" — every update is journaled to an object in the shared network
// storage array, so a surviving site can recover a failed manager's state
// from its backing objects plus its log.
//
// Records are length-framed XDR blobs. Appends accumulate in a group-commit
// buffer that flushes to the backing storage node on a short timer (matching
// the prototype's asynchronous journaling; the paper notes ~0.5 MB/s of log
// traffic per directory server at saturation).
#ifndef SLICE_DIR_WAL_H_
#define SLICE_DIR_WAL_H_

#include <functional>

#include "src/nfs/nfs_client.h"

namespace slice {

struct WalParams {
  SimTime flush_interval = FromMillis(50);
  uint32_t replay_chunk = 32768;
};

class WriteAheadLog {
 public:
  // `backing_node` + `backing_object` name the log object in the storage
  // array. The log issues its own RPC traffic from `host`.
  WriteAheadLog(Host& host, EventQueue& queue, Endpoint backing_node,
                FileHandle backing_object, WalParams params = {});

  // Appends one record (durable after the next flush).
  void Append(ByteSpan record);

  // Pushes any buffered records to the backing object now.
  void Flush();

  // Streams every record to `on_record`, then calls `on_done`. Used for
  // recovery after a crash wiped in-memory state.
  void Replay(std::function<void(ByteSpan)> on_record, std::function<void(Status)> on_done);

  // Forgets buffered (unflushed) records — models losing them in a crash.
  void DiscardBuffered();

  uint64_t bytes_logged() const { return log_offset_ + buffer_.size(); }
  uint64_t records_logged() const { return records_; }
  uint64_t flushes() const { return flushes_; }

  // Log appends issued while a traced request is in scope join its trace.
  void set_tracer(obs::Tracer* tracer) { client_.set_tracer(tracer); }

 private:
  void ArmFlushTimer();
  void ReplayChunk(uint64_t offset, Bytes carry, std::function<void(ByteSpan)> on_record,
                   std::function<void(Status)> on_done);

  EventQueue& queue_;
  NfsClient client_;
  FileHandle object_;
  WalParams params_;
  Bytes buffer_;
  uint64_t log_offset_ = 0;  // stable bytes already at the backing object
  uint64_t records_ = 0;
  uint64_t flushes_ = 0;
  bool timer_armed_ = false;
};

}  // namespace slice

#endif  // SLICE_DIR_WAL_H_
