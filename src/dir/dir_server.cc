#include "src/dir/dir_server.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"
#include "src/mgmt/mgmt_proto.h"

namespace slice {
namespace {

// WAL record opcodes.
enum class DirLogOp : uint32_t {
  kInsertEntry = 1,
  kEraseEntry = 2,
  kUpsertAttr = 3,
  kEraseAttr = 4,
};

void EncodeAttrForLog(XdrEncoder& enc, const Fattr3& attr, const std::string& symlink) {
  EncodeFattr3(enc, attr);
  enc.PutString(symlink);
}

}  // namespace

DirServer::DirServer(Network& net, EventQueue& queue, NetAddr addr, DirServerParams params)
    : RpcServerNode(net, queue, addr, kNfsPort),
      params_(params),
      next_counter_(params.site == 0 ? kRootFileid + 1 : 1) {
  if (params_.backing_node.addr != 0) {
    wal_ = std::make_unique<WriteAheadLog>(host(), queue, params_.backing_node,
                                           params_.backing_object);
  }
  if (params_.site == 0) {
    Fattr3 root = NewAttr(kRootFileid, FileType3::kDir);
    ApplyUpsertAttr(kRootFileid, root, "", /*log=*/true);
  }
}

FileHandle DirServer::RootHandle() const {
  return FileHandle::Make(params_.volume, kRootFileid, 1, FileType3::kDir, 1,
                          params_.volume_secret);
}

NfsTime DirServer::Now() const {
  return NfsTime{static_cast<uint32_t>(now() / kNanosPerSec),
                 static_cast<uint32_t>(now() % kNanosPerSec)};
}

FileHandle DirServer::MintHandle(uint64_t fileid, FileType3 type) const {
  const uint8_t replication = type == FileType3::kReg ? params_.default_replication : 1;
  return FileHandle::Make(params_.volume, fileid, 1, type, replication, params_.volume_secret);
}

Fattr3 DirServer::NewAttr(uint64_t fileid, FileType3 type) const {
  Fattr3 attr;
  attr.type = type;
  attr.mode = type == FileType3::kDir ? 0755 : 0644;
  attr.nlink = type == FileType3::kDir ? 2 : 1;
  attr.size = 0;
  attr.used = 0;
  attr.fsid = params_.volume;
  attr.fileid = fileid;
  attr.atime = attr.mtime = attr.ctime = Now();
  return attr;
}

// --- logged primitives ---

void DirServer::ApplyInsertEntry(uint64_t parent, const std::string& name,
                                 const FileHandle& child, bool log) {
  (void)store_.InsertEntry(parent, name, child);
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(DirLogOp::kInsertEntry));
    rec.PutUint64(parent);
    rec.PutString(name);
    rec.PutOpaqueVar(child.bytes());
    wal_->Append(rec.bytes());
  }
}

void DirServer::ApplyEraseEntry(uint64_t parent, const std::string& name, bool log) {
  (void)store_.EraseEntry(parent, name);
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(DirLogOp::kEraseEntry));
    rec.PutUint64(parent);
    rec.PutString(name);
    wal_->Append(rec.bytes());
  }
}

void DirServer::ApplyUpsertAttr(uint64_t fileid, const Fattr3& attr, const std::string& symlink,
                                bool log) {
  AttrCell* cell = store_.FindAttr(fileid);
  if (cell == nullptr) {
    (void)store_.InsertAttr(fileid, attr);
    cell = store_.FindAttr(fileid);
  } else {
    cell->attr = attr;
  }
  if (!symlink.empty()) {
    cell->symlink_target = symlink;
  }
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(DirLogOp::kUpsertAttr));
    rec.PutUint64(fileid);
    EncodeAttrForLog(rec, cell->attr, cell->symlink_target);
    wal_->Append(rec.bytes());
  }
}

void DirServer::ApplyEraseAttr(uint64_t fileid, bool log) {
  (void)store_.EraseAttr(fileid);
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(DirLogOp::kEraseAttr));
    rec.PutUint64(fileid);
    wal_->Append(rec.bytes());
  }
}

void DirServer::ReplayRecord(ByteSpan record, bool relog) {
  XdrDecoder dec(record);
  Result<uint32_t> op = dec.GetUint32();
  if (!op.ok()) {
    SLICE_WLOG << "dir: bad log record";
    return;
  }
  switch (static_cast<DirLogOp>(*op)) {
    case DirLogOp::kInsertEntry: {
      Result<uint64_t> parent = dec.GetUint64();
      Result<std::string> name = dec.GetString(255);
      Result<Bytes> raw = dec.GetOpaqueVar(64);
      if (parent.ok() && name.ok() && raw.ok() && raw->size() == FileHandle::kSize) {
        ApplyInsertEntry(*parent, *name, FileHandle::FromBytes(*raw), /*log=*/relog);
      }
      break;
    }
    case DirLogOp::kEraseEntry: {
      Result<uint64_t> parent = dec.GetUint64();
      Result<std::string> name = dec.GetString(255);
      if (parent.ok() && name.ok()) {
        ApplyEraseEntry(*parent, *name, /*log=*/relog);
      }
      break;
    }
    case DirLogOp::kUpsertAttr: {
      Result<uint64_t> fileid = dec.GetUint64();
      Result<Fattr3> attr = DecodeFattr3(dec);
      Result<std::string> symlink = dec.GetString(1024);
      if (fileid.ok() && attr.ok() && symlink.ok()) {
        ApplyUpsertAttr(*fileid, *attr, *symlink, /*log=*/relog);
        if (SiteOfFileid(*fileid) == params_.site) {
          const uint64_t counter = *fileid & ((1ull << 48) - 1);
          next_counter_ = std::max(next_counter_, counter + 1);
        }
      }
      break;
    }
    case DirLogOp::kEraseAttr: {
      Result<uint64_t> fileid = dec.GetUint64();
      if (fileid.ok()) {
        ApplyEraseAttr(*fileid, /*log=*/relog);
      }
      break;
    }
  }
}

void DirServer::OnRestart() {
  if (!wal_) {
    return;  // nothing to recover from; state is simply lost
  }
  // The crash lost in-memory cells and any unflushed log tail.
  wal_->DiscardBuffered();
  store_.Clear();
  recovering_ = true;
  wal_->Replay([this](ByteSpan record) { ReplayRecord(record); },
               [this](Status st) {
                 if (!st.ok()) {
                   SLICE_ELOG << "dir: recovery replay failed: " << st.ToString();
                 }
                 recovering_ = false;
                 SLICE_ILOG << "dir site " << params_.site << " recovered "
                            << store_.entry_count() << " entries, " << store_.attr_count()
                            << " attr cells";
                 obs::LogEvent(eventlog(), addr(), queue().now(), obs::EventSev::kInfo,
                               obs::EventCat::kFailover, obs::EventCode::kWalReplay,
                               /*trace_id=*/0, st.ok() ? "recovered" : "failed",
                               {{"site", params_.site},
                                {"entries", static_cast<int64_t>(store_.entry_count())},
                                {"attrs", static_cast<int64_t>(store_.attr_count())}});
               });
}

// --- ensemble control-plane integration ---

void DirServer::SetMgmtView(uint64_t epoch, uint32_t my_physical, std::vector<uint32_t> slots) {
  if (epoch < mgmt_epoch_) {
    return;
  }
  mgmt_epoch_ = epoch;
  my_physical_ = my_physical;
  mgmt_slots_ = std::move(slots);
  misdirect_notified_.clear();
}

bool DirServer::MisroutedByFileid(uint64_t fileid) const {
  if (mgmt_slots_.empty()) {
    return false;
  }
  const uint32_t site = SiteOfFileid(fileid);
  return mgmt_slots_[site % mgmt_slots_.size()] != my_physical_;
}

bool DirServer::MisroutedNameOp(const FileHandle& dir, const std::string& name) const {
  if (mgmt_slots_.empty()) {
    return false;
  }
  if (params_.policy == NamePolicy::kNameHashing) {
    const uint64_t fp = NameFingerprint(dir, name);
    return mgmt_slots_[fp % mgmt_slots_.size()] != my_physical_;
  }
  return MisroutedByFileid(dir.fileid());
}

uint32_t DirServer::EntrySiteById(uint64_t parent_id, const std::string& name) const {
  if (params_.policy == NamePolicy::kNameHashing) {
    // Reconstruct the parent handle the client would present; directory
    // handles are deterministic (generation 1, unmirrored).
    const FileHandle parent = FileHandle::Make(params_.volume, parent_id, 1, FileType3::kDir,
                                               1, params_.volume_secret);
    return NameHashSite(NameFingerprint(parent, name), params_.num_sites);
  }
  return SiteOfFileid(parent_id);
}

void DirServer::AdoptSite(uint32_t site, Endpoint wal_node, FileHandle wal_object,
                          std::function<void(Status)> done) {
  if (site == params_.site || adopted_sites_.contains(site)) {
    if (done) {
      done(OkStatus());
    }
    return;
  }
  ++adopting_;
  SLICE_ILOG << "dir site " << params_.site << ": adopting site " << site;
  // A fresh reader over the dead server's log object; keep it alive until
  // the replay completes.
  auto wal = std::make_shared<WriteAheadLog>(host(), queue(), wal_node, wal_object);
  wal->Replay(
      [this](ByteSpan record) { ReplayRecord(record, /*relog=*/true); },
      [this, site, wal, done = std::move(done)](Status st) {
        --adopting_;
        if (st.ok()) {
          adopted_sites_.insert(site);
          SLICE_ILOG << "dir site " << params_.site << ": adopted site " << site << " ("
                     << store_.entry_count() << " entries now resident)";
        } else {
          SLICE_ELOG << "dir site " << params_.site << ": adoption of site " << site
                     << " failed: " << st.ToString();
        }
        obs::LogEvent(eventlog(), addr(), queue().now(),
                      st.ok() ? obs::EventSev::kInfo : obs::EventSev::kError,
                      obs::EventCat::kFailover, obs::EventCode::kAdoptDone, /*trace_id=*/0,
                      st.ok() ? "adopted" : "failed",
                      {{"site", site}, {"entries", static_cast<int64_t>(store_.entry_count())}});
        if (done) {
          done(st);
        }
      });
}

void DirServer::HandoffSite(uint32_t site, DirServer& target) {
  if (adopted_sites_.erase(site) == 0) {
    return;
  }
  obs::LogEvent(eventlog(), addr(), queue().now(), obs::EventSev::kInfo,
                obs::EventCat::kFailover, obs::EventCode::kHandoff, /*trace_id=*/0, nullptr,
                {{"site", site}, {"to", target.addr()}});
  // Drop the target's stale pre-crash copy first: mutations during the
  // outage — including deletions — exist only in the adopter's store/log,
  // so anything the rejoined server replayed from its own log is stale.
  std::vector<NameCell> stale_entries;
  target.store_.ForEachEntry([&](const NameCell& cell) {
    if (target.EntrySiteById(cell.parent_id, cell.name) == site) {
      stale_entries.push_back(cell);
    }
  });
  for (const NameCell& cell : stale_entries) {
    target.ApplyEraseEntry(cell.parent_id, cell.name, /*log=*/true);
  }
  std::vector<uint64_t> stale_attrs;
  target.store_.ForEachAttr([&](uint64_t fileid, const AttrCell& cell) {
    (void)cell;
    if (SiteOfFileid(fileid) == site) {
      stale_attrs.push_back(fileid);
    }
  });
  for (uint64_t fileid : stale_attrs) {
    target.ApplyEraseAttr(fileid, /*log=*/true);
  }

  std::vector<NameCell> entries;
  store_.ForEachEntry([&](const NameCell& cell) {
    if (EntrySiteById(cell.parent_id, cell.name) == site) {
      entries.push_back(cell);
    }
  });
  std::vector<std::pair<uint64_t, AttrCell>> attrs;
  store_.ForEachAttr([&](uint64_t fileid, const AttrCell& cell) {
    if (SiteOfFileid(fileid) == site) {
      attrs.emplace_back(fileid, cell);
    }
  });
  for (const NameCell& cell : entries) {
    target.ApplyInsertEntry(cell.parent_id, cell.name, cell.child, /*log=*/true);
    ApplyEraseEntry(cell.parent_id, cell.name, /*log=*/true);
  }
  for (const auto& [fileid, cell] : attrs) {
    target.ApplyUpsertAttr(fileid, cell.attr, cell.symlink_target, /*log=*/true);
    ApplyEraseAttr(fileid, /*log=*/true);
  }
  SLICE_ILOG << "dir site " << params_.site << ": handed " << entries.size() << " entries, "
             << attrs.size() << " attr cells back to site " << site;
}

void DirServer::MigrateSlot(uint32_t slot, uint32_t num_slots, DirServer& target) {
  if (params_.policy != NamePolicy::kNameHashing || num_slots == 0 || &target == this) {
    return;
  }
  std::vector<NameCell> moved;
  store_.ForEachEntry([&](const NameCell& cell) {
    const FileHandle parent = FileHandle::Make(params_.volume, cell.parent_id, 1,
                                               FileType3::kDir, 1, params_.volume_secret);
    if (NameFingerprint(parent, cell.name) % num_slots == slot) {
      moved.push_back(cell);
    }
  });
  for (const NameCell& cell : moved) {
    target.ApplyInsertEntry(cell.parent_id, cell.name, cell.child, /*log=*/true);
    ApplyEraseEntry(cell.parent_id, cell.name, /*log=*/true);
  }
  SLICE_ILOG << "dir site " << params_.site << ": migrated slot " << slot << " ("
             << moved.size() << " entries) to site " << target.params_.site;
}

// --- peer protocol ---

void DirServer::ChargePeer(ServiceCost& cost) {
  ++cross_site_ops_;
  cost.AddCpu(FromMicros(params_.peer_cpu_us));
  cost.MergeCompletion(now() + FromMicros(params_.peer_rtt_us));
}

Status DirServer::PeerInsertEntry(uint32_t site, uint64_t parent, const std::string& name,
                                  const FileHandle& child, ServiceCost& cost) {
  if (IsLocalSite(site)) {
    if (store_.FindEntry(parent, name).ok()) {
      return Status(StatusCode::kAlreadyExists, "entry exists");
    }
    ApplyInsertEntry(parent, name, child, /*log=*/true);
    return OkStatus();
  }
  ChargePeer(cost);
  DirServer& peer = Peer(site);
  if (peer.store_.FindEntry(parent, name).ok()) {
    return Status(StatusCode::kAlreadyExists, "entry exists");
  }
  peer.ApplyInsertEntry(parent, name, child, /*log=*/true);
  return OkStatus();
}

Status DirServer::PeerEraseEntry(uint32_t site, uint64_t parent, const std::string& name,
                                 ServiceCost& cost) {
  if (IsLocalSite(site)) {
    if (!store_.FindEntry(parent, name).ok()) {
      return Status(StatusCode::kNotFound, "no entry");
    }
    ApplyEraseEntry(parent, name, /*log=*/true);
    return OkStatus();
  }
  ChargePeer(cost);
  DirServer& peer = Peer(site);
  if (!peer.store_.FindEntry(parent, name).ok()) {
    return Status(StatusCode::kNotFound, "no entry");
  }
  peer.ApplyEraseEntry(parent, name, /*log=*/true);
  return OkStatus();
}

void DirServer::TouchDirAttr(uint64_t dir_id, int entry_delta, int nlink_delta,
                             ServiceCost& cost) {
  const uint32_t site = SiteOfFileid(dir_id);
  DirServer* owner = this;
  if (!IsLocalSite(site)) {
    ChargePeer(cost);
    owner = &Peer(site);
  }
  AttrCell* cell = owner->store_.FindAttr(dir_id);
  if (cell == nullptr) {
    return;
  }
  cell->attr.mtime = cell->attr.ctime = Now();
  cell->attr.size =
      static_cast<uint64_t>(std::max<int64_t>(0, static_cast<int64_t>(cell->attr.size) +
                                                     entry_delta));
  cell->attr.nlink =
      static_cast<uint32_t>(std::max<int64_t>(0, static_cast<int64_t>(cell->attr.nlink) +
                                                     nlink_delta));
  owner->ApplyUpsertAttr(dir_id, cell->attr, cell->symlink_target, /*log=*/true);
}

uint32_t DirServer::AdjustNlink(uint64_t fileid, int delta, ServiceCost& cost) {
  const uint32_t site = SiteOfFileid(fileid);
  DirServer* owner = this;
  if (!IsLocalSite(site)) {
    ChargePeer(cost);
    owner = &Peer(site);
  }
  AttrCell* cell = owner->store_.FindAttr(fileid);
  if (cell == nullptr) {
    return 0;
  }
  const int64_t nlink = std::max<int64_t>(0, static_cast<int64_t>(cell->attr.nlink) + delta);
  cell->attr.nlink = static_cast<uint32_t>(nlink);
  cell->attr.ctime = Now();
  if (nlink == 0) {
    owner->ApplyEraseAttr(fileid, /*log=*/true);
  } else {
    owner->ApplyUpsertAttr(fileid, cell->attr, cell->symlink_target, /*log=*/true);
  }
  return static_cast<uint32_t>(nlink);
}

std::optional<Fattr3> DirServer::GetAttrAnywhere(uint64_t fileid, ServiceCost& cost) {
  const uint32_t site = SiteOfFileid(fileid);
  const DirServer* owner = this;
  if (!IsLocalSite(site)) {
    ChargePeer(cost);
    owner = &Peer(site);
  }
  const AttrCell* cell = owner->store_.FindAttr(fileid);
  if (cell == nullptr) {
    return std::nullopt;
  }
  return cell->attr;
}

uint32_t DirServer::EntrySite(const FileHandle& parent, const std::string& name) const {
  if (params_.policy == NamePolicy::kNameHashing) {
    return NameHashSite(NameFingerprint(parent, name), params_.num_sites);
  }
  return SiteOfFileid(parent.fileid());
}

uint32_t DirServer::OwnerSiteForEntry(const FileHandle& parent, const std::string& name) const {
  const uint32_t site = EntrySite(parent, name);
  if (params_.policy != NamePolicy::kNameHashing || mgmt_slots_.empty() || peers_.empty()) {
    return site;
  }
  // A hotspot re-stripe can bind this name's logical slot to a different
  // physical server than the static fold; secondary names (a rename target)
  // must follow the installed view or the entry lands where lookups will
  // never route. When both mappings resolve to the same server, keep the
  // static site so the peer-charge accounting is unchanged.
  const uint64_t fp = NameFingerprint(parent, name);
  const uint32_t phys = mgmt_slots_[fp % mgmt_slots_.size()];
  if (phys < peers_.size() && peers_[phys] != peers_[site % peers_.size()]) {
    return phys;
  }
  return site;
}

// --- NFS handlers ---

void DirServer::HandleGetattr(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  GetattrRes res;
  const AttrCell* cell = store_.FindAttr(args.object.fileid());
  if (cell == nullptr) {
    // Possibly misdirected (stale routing table) or genuinely stale handle.
    std::optional<Fattr3> remote = GetAttrAnywhere(args.object.fileid(), cost);
    if (remote.has_value()) {
      res.attributes = *remote;
    } else {
      res.status = Nfsstat3::kErrStale;
    }
  } else {
    res.attributes = cell->attr;
  }
  res.Encode(reply);
}

void DirServer::HandleSetattr(const SetattrArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  SetattrRes res;
  const uint64_t fileid = args.object.fileid();
  const uint32_t site = SiteOfFileid(fileid);
  DirServer* owner = this;
  if (!IsLocalSite(site)) {
    ChargePeer(cost);
    owner = &Peer(site);
  }
  AttrCell* cell = owner->store_.FindAttr(fileid);
  if (cell == nullptr) {
    res.status = Nfsstat3::kErrStale;
    res.Encode(reply);
    return;
  }
  if (args.guard_ctime.has_value() && !(*args.guard_ctime == cell->attr.ctime)) {
    res.status = Nfsstat3::kErrNotSync;
    res.wcc.after = cell->attr;
    res.Encode(reply);
    return;
  }
  res.wcc.before = WccAttr{cell->attr.size, cell->attr.mtime, cell->attr.ctime};
  const Sattr3& set = args.new_attributes;
  if (set.mode) {
    cell->attr.mode = *set.mode;
  }
  if (set.uid) {
    cell->attr.uid = *set.uid;
  }
  if (set.gid) {
    cell->attr.gid = *set.gid;
  }
  if (set.size) {
    cell->attr.size = *set.size;
    cell->attr.used = *set.size;
  }
  if (set.atime) {
    cell->attr.atime = *set.atime;
  }
  if (set.mtime) {
    cell->attr.mtime = *set.mtime;
  }
  cell->attr.ctime = Now();
  owner->ApplyUpsertAttr(fileid, cell->attr, cell->symlink_target, /*log=*/true);
  res.wcc.after = cell->attr;
  res.Encode(reply);
}

void DirServer::HandleLookup(const DirOpArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  LookupRes res;
  Result<FileHandle> child = store_.FindEntry(args.dir.fileid(), args.name);
  if (const AttrCell* dir_cell = store_.FindAttr(args.dir.fileid()); dir_cell != nullptr) {
    res.dir_attributes = dir_cell->attr;
  }
  if (!child.ok()) {
    res.status = Nfsstat3::kErrNoent;
    res.Encode(reply);
    return;
  }
  res.object = *child;
  res.obj_attributes = GetAttrAnywhere(child->fileid(), cost);
  res.Encode(reply);
}

void DirServer::HandleAccess(const AccessArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  AccessRes res;
  res.obj_attributes = GetAttrAnywhere(args.object.fileid(), cost);
  if (!res.obj_attributes.has_value()) {
    res.status = Nfsstat3::kErrStale;
  } else {
    res.access = args.access;  // permissive: no uid/gid enforcement modeled
  }
  res.Encode(reply);
}

void DirServer::HandleReadlink(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  ReadlinkRes res;
  const AttrCell* cell = store_.FindAttr(args.object.fileid());
  if (cell == nullptr || cell->attr.type != FileType3::kLnk) {
    res.status = cell == nullptr ? Nfsstat3::kErrStale : Nfsstat3::kErrInval;
  } else {
    res.symlink_attributes = cell->attr;
    res.target = cell->symlink_target;
  }
  res.Encode(reply);
}

void DirServer::HandleCreate(const CreateArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  CreateRes res;
  Result<FileHandle> existing = store_.FindEntry(args.dir.fileid(), args.name);
  if (existing.ok()) {
    if (args.mode == CreateMode::kUnchecked) {
      res.object = *existing;
      res.obj_attributes = GetAttrAnywhere(existing->fileid(), cost);
    } else {
      res.status = Nfsstat3::kErrExist;
    }
    res.Encode(reply);
    return;
  }
  const uint64_t fileid = MintFileid();
  const FileHandle fh = MintHandle(fileid, FileType3::kReg);
  Fattr3 attr = NewAttr(fileid, FileType3::kReg);
  if (args.attributes.mode) {
    attr.mode = *args.attributes.mode;
  }
  if (args.attributes.size) {
    attr.size = *args.attributes.size;
  }
  ApplyUpsertAttr(fileid, attr, "", /*log=*/true);
  ApplyInsertEntry(args.dir.fileid(), args.name, fh, /*log=*/true);
  TouchDirAttr(args.dir.fileid(), +1, 0, cost);
  res.object = fh;
  res.obj_attributes = attr;
  if (const AttrCell* dir_cell = store_.FindAttr(args.dir.fileid()); dir_cell != nullptr) {
    res.dir_wcc.after = dir_cell->attr;
  }
  res.Encode(reply);
}

void DirServer::HandleMkdir(const MkdirArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  CreateRes res;
  const uint32_t parent_site = SiteOfFileid(args.dir.fileid());

  // Duplicate check at the entry's owning site (the parent's site for mkdir
  // switching, ours for name hashing).
  const uint32_t entry_site =
      params_.policy == NamePolicy::kNameHashing ? params_.site : parent_site;

  const uint64_t fileid = MintFileid();
  const FileHandle fh = MintHandle(fileid, FileType3::kDir);
  Fattr3 attr = NewAttr(fileid, FileType3::kDir);
  if (args.attributes.mode) {
    attr.mode = *args.attributes.mode;
  }

  const Status inserted = PeerInsertEntry(entry_site, args.dir.fileid(), args.name, fh, cost);
  if (!inserted.ok()) {
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }
  ApplyUpsertAttr(fileid, attr, "", /*log=*/true);
  TouchDirAttr(args.dir.fileid(), +1, +1, cost);
  res.object = fh;
  res.obj_attributes = attr;
  res.dir_wcc.after = GetAttrAnywhere(args.dir.fileid(), cost);
  res.Encode(reply);
}

void DirServer::HandleSymlink(const SymlinkArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  CreateRes res;
  if (store_.FindEntry(args.dir.fileid(), args.name).ok()) {
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }
  const uint64_t fileid = MintFileid();
  const FileHandle fh = MintHandle(fileid, FileType3::kLnk);
  Fattr3 attr = NewAttr(fileid, FileType3::kLnk);
  attr.size = args.target.size();
  ApplyUpsertAttr(fileid, attr, args.target, /*log=*/true);
  ApplyInsertEntry(args.dir.fileid(), args.name, fh, /*log=*/true);
  TouchDirAttr(args.dir.fileid(), +1, 0, cost);
  res.object = fh;
  res.obj_attributes = attr;
  res.Encode(reply);
}

void DirServer::HandleRemove(const DirOpArgs& args, bool rmdir, XdrEncoder& reply,
                             ServiceCost& cost) {
  RemoveRes res;
  Result<FileHandle> child = store_.FindEntry(args.dir.fileid(), args.name);
  if (!child.ok()) {
    res.status = Nfsstat3::kErrNoent;
    res.Encode(reply);
    return;
  }
  const bool is_dir = child->IsDir();
  if (rmdir && !is_dir) {
    res.status = Nfsstat3::kErrNotdir;
    res.Encode(reply);
    return;
  }
  if (!rmdir && is_dir) {
    res.status = Nfsstat3::kErrIsdir;
    res.Encode(reply);
    return;
  }

  if (rmdir) {
    // Empty check: under mkdir switching a directory's entries live at its
    // own site; under name hashing they are scattered across every site.
    size_t entries = 0;
    if (params_.policy == NamePolicy::kNameHashing && !peers_.empty()) {
      for (DirServer* peer : peers_) {
        if (peer != this) {
          ChargePeer(cost);
        }
        entries += peer->store_.CountDir(child->fileid());
      }
    } else {
      const uint32_t dir_site = SiteOfFileid(child->fileid());
      if (IsLocalSite(dir_site)) {
        entries = store_.CountDir(child->fileid());
      } else {
        ChargePeer(cost);
        entries = Peer(dir_site).store_.CountDir(child->fileid());
      }
    }
    if (entries > 0) {
      res.status = Nfsstat3::kErrNotempty;
      res.Encode(reply);
      return;
    }
  }

  ApplyEraseEntry(args.dir.fileid(), args.name, /*log=*/true);
  if (rmdir) {
    const uint32_t dir_site = SiteOfFileid(child->fileid());
    DirServer* owner = this;
    if (!IsLocalSite(dir_site)) {
      ChargePeer(cost);
      owner = &Peer(dir_site);
    }
    owner->ApplyEraseAttr(child->fileid(), /*log=*/true);
    owner->store_.DropDirIndex(child->fileid());
    TouchDirAttr(args.dir.fileid(), -1, -1, cost);
  } else {
    AdjustNlink(child->fileid(), -1, cost);
    TouchDirAttr(args.dir.fileid(), -1, 0, cost);
  }
  if (const AttrCell* dir_cell = store_.FindAttr(args.dir.fileid()); dir_cell != nullptr) {
    res.dir_wcc.after = dir_cell->attr;
  }
  res.Encode(reply);
}

void DirServer::HandleRename(const RenameArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  RenameRes res;
  Result<FileHandle> child = store_.FindEntry(args.from_dir.fileid(), args.from_name);
  if (!child.ok()) {
    res.status = Nfsstat3::kErrNoent;
    res.Encode(reply);
    return;
  }
  const bool is_dir = child->IsDir();
  const uint32_t target_site = OwnerSiteForEntry(args.to_dir, args.to_name);

  // If the target name exists, NFS semantics replace it (rejecting a
  // non-empty directory target).
  const DirStore* target_store =
      IsLocalSite(target_site) ? &store_ : &Peer(target_site).store_;
  Result<FileHandle> target = target_store->FindEntry(args.to_dir.fileid(), args.to_name);
  if (target.ok()) {
    if (target->IsDir()) {
      const uint32_t tsite = SiteOfFileid(target->fileid());
      size_t entries = 0;
      if (IsLocalSite(tsite)) {
        entries = store_.CountDir(target->fileid());
      } else {
        ChargePeer(cost);
        entries = Peer(tsite).store_.CountDir(target->fileid());
      }
      if (entries > 0) {
        res.status = Nfsstat3::kErrNotempty;
        res.Encode(reply);
        return;
      }
    }
    (void)PeerEraseEntry(target_site, args.to_dir.fileid(), args.to_name, cost);
    if (!target->IsDir()) {
      AdjustNlink(target->fileid(), -1, cost);
    }
  }

  ApplyEraseEntry(args.from_dir.fileid(), args.from_name, /*log=*/true);
  const Status inserted =
      PeerInsertEntry(target_site, args.to_dir.fileid(), args.to_name, *child, cost);
  if (!inserted.ok()) {
    // Roll back the erase (two-phase commit would prevent this window).
    ApplyInsertEntry(args.from_dir.fileid(), args.from_name, *child, /*log=*/true);
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }

  const bool same_dir = args.from_dir.fileid() == args.to_dir.fileid();
  TouchDirAttr(args.from_dir.fileid(), -1, is_dir && !same_dir ? -1 : 0, cost);
  TouchDirAttr(args.to_dir.fileid(), +1, is_dir && !same_dir ? +1 : 0, cost);
  res.from_dir_wcc.after = GetAttrAnywhere(args.from_dir.fileid(), cost);
  res.to_dir_wcc.after = GetAttrAnywhere(args.to_dir.fileid(), cost);
  res.Encode(reply);
}

void DirServer::HandleLink(const LinkArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  LinkRes res;
  const Status inserted =
      PeerInsertEntry(params_.site, args.dir.fileid(), args.name, args.file, cost);
  if (!inserted.ok()) {
    res.status = Nfsstat3::kErrExist;
    res.Encode(reply);
    return;
  }
  AdjustNlink(args.file.fileid(), +1, cost);
  TouchDirAttr(args.dir.fileid(), +1, 0, cost);
  res.file_attributes = GetAttrAnywhere(args.file.fileid(), cost);
  if (const AttrCell* dir_cell = store_.FindAttr(args.dir.fileid()); dir_cell != nullptr) {
    res.dir_wcc.after = dir_cell->attr;
  }
  res.Encode(reply);
}

void DirServer::HandleReaddir(const ReaddirArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  ReaddirRes res;
  res.plus = args.plus;
  const uint64_t dir_id = args.dir.fileid();
  if (const AttrCell* cell = store_.FindAttr(dir_id); cell != nullptr) {
    res.dir_attributes = cell->attr;
  }

  // Gather entries. Under name hashing a directory's entries are scattered
  // across every site ("readdir operations span multiple sites", §3.2).
  std::vector<NameCell> all = store_.ListDir(dir_id);
  if (params_.policy == NamePolicy::kNameHashing && !peers_.empty()) {
    for (DirServer* peer : peers_) {
      if (peer == this) {
        continue;
      }
      ChargePeer(cost);
      std::vector<NameCell> part = peer->store_.ListDir(dir_id);
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end(),
              [](const NameCell& a, const NameCell& b) { return a.name < b.name; });
  }

  const uint32_t budget = std::max<uint32_t>(args.plus ? args.maxcount : args.count, 512);
  uint32_t used = 0;
  uint64_t cookie = 0;
  res.eof = true;
  for (size_t i = args.cookie; i < all.size(); ++i) {
    const NameCell& cell = all[i];
    const uint32_t entry_size = static_cast<uint32_t>(24 + cell.name.size()) +
                                (args.plus ? kFattr3WireSize + FileHandle::kSize + 12 : 0);
    if (used + entry_size > budget) {
      res.eof = false;
      break;
    }
    used += entry_size;
    cookie = i + 1;
    DirEntry entry;
    entry.fileid = cell.child.fileid();
    entry.name = cell.name;
    entry.cookie = cookie;
    if (args.plus) {
      entry.handle = cell.child;
      entry.attr = GetAttrAnywhere(cell.child.fileid(), cost);
    }
    res.entries.push_back(std::move(entry));
  }
  res.cookieverf = 1;
  res.Encode(reply);
}

void DirServer::HandleFsstat(XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  FsstatRes res;
  res.tbytes = 1ull << 42;
  res.fbytes = res.abytes = 1ull << 41;
  res.tfiles = 1ull << 24;
  res.ffiles = res.afiles = res.tfiles - store_.attr_count();
  if (const AttrCell* cell = store_.FindAttr(kRootFileid); cell != nullptr) {
    res.obj_attributes = cell->attr;
  }
  res.Encode(reply);
}

void DirServer::HandleFsinfo(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  (void)cost;
  FsinfoRes res;
  if (const AttrCell* cell = store_.FindAttr(args.object.fileid()); cell != nullptr) {
    res.obj_attributes = cell->attr;
  }
  res.Encode(reply);
}

namespace {

// Encodes a minimal valid error body for any procedure (used while a server
// is recovering or when arguments fail to decode at the NFS layer).
void EncodeErrorFor(NfsProc proc, Nfsstat3 status, XdrEncoder& reply) {
  switch (proc) {
    case NfsProc::kGetattr: {
      GetattrRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kSetattr: {
      SetattrRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kLookup: {
      LookupRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kAccess: {
      AccessRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kReadlink: {
      ReadlinkRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kCreate:
    case NfsProc::kMkdir:
    case NfsProc::kSymlink: {
      CreateRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kRemove:
    case NfsProc::kRmdir: {
      RemoveRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kRename: {
      RenameRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kLink: {
      LinkRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus: {
      ReaddirRes res;
      res.status = status;
      res.Encode(reply);
      return;
    }
    default: {
      reply.PutEnum(static_cast<uint32_t>(status));
      return;
    }
  }
}

}  // namespace

void DirServer::MisdirectReply(NfsProc proc, XdrEncoder& reply) {
  ++misdirects_answered_;
  EncodeErrorFor(proc, Nfsstat3::kErrJukebox, reply);
  // Lazy table distribution: tell the client's µproxy its table is stale so
  // it fetches the current epoch from the manager (once per client+epoch).
  if (current_client_.addr != 0 &&
      misdirect_notified_.insert({current_client_.addr, mgmt_epoch_}).second) {
    SendPacket(Packet::MakeUdp(endpoint(), Endpoint{current_client_.addr, kMgmtClientPort},
                               EncodeMisdirectNotice(mgmt_epoch_)));
  }
}

void DirServer::DispatchCall(const RpcMessageView& call, const Endpoint& client,
                             ReplyFn done) {
  current_client_ = client;
  RpcServerNode::DispatchCall(call, client, std::move(done));
}

void DirServer::NoteSlotOp(const FileHandle& dir, std::string_view name, uint32_t tenant) {
  const uint32_t slot =
      static_cast<uint32_t>(NameFingerprint(dir, name) % kDefaultLogicalSlots);
  ++slot_ops_[slot];
  if (!slot_tenant_ops_.empty() && tenant >= 1 && tenant <= slot_tenants_) {
    ++slot_tenant_ops_[slot * slot_tenants_ + tenant - 1];
  }
}

void DirServer::set_metrics(obs::Metrics* metrics) {
  RpcServerNode::set_metrics(metrics);
  if (metrics == nullptr || !metrics->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics->Registry(addr());
  reg.GetCounter("dir_local_ops")->SetProvider([this]() { return local_ops_; });
  reg.GetCounter("dir_cross_site_ops")->SetProvider([this]() { return cross_site_ops_; });
  reg.GetCounter("dir_misdirects")->SetProvider([this]() { return misdirects_answered_; });
  reg.GetGauge("dir_adopted_sites")->SetProvider(
      [this]() { return static_cast<int64_t>(adopted_sites_.size()); });
  // Name-space op mix: one counter per NFS procedure actually seen.
  for (size_t p = 0; p < kNfsProcCount; ++p) {
    std::string name = "dir_op_";
    name += NfsProcName(static_cast<NfsProc>(p));
    reg.GetCounter(name)->SetProvider([this, p]() { return proc_counts_[p]; });
  }
  if (wal_) {
    reg.GetCounter("dir_wal_bytes")->SetProvider([this]() { return wal_->bytes_logged(); });
    reg.GetCounter("dir_wal_records")->SetProvider(
        [this]() { return wal_->records_logged(); });
    reg.GetCounter("dir_wal_flushes")->SetProvider([this]() { return wal_->flushes(); });
  }
  // Per-slot heat map (opt-in; pinned goldens sum every registered counter).
  // The joint slot×tenant counters tell the tenant report which tenant heats
  // which slot, and give the manager's hotspot detector slot-grained demand.
  if (params_.slot_metrics) {
    for (uint32_t s = 0; s < kDefaultLogicalSlots; ++s) {
      char name[32];
      std::snprintf(name, sizeof(name), "dir_slot%02u_ops", s);
      reg.GetCounter(name)->SetProvider([this, s]() { return slot_ops_[s]; });
    }
    if (const uint32_t tenants = metrics->num_tenants(); tenants > 0) {
      slot_tenants_ = tenants;
      slot_tenant_ops_.assign(static_cast<size_t>(kDefaultLogicalSlots) * tenants, 0);
      for (uint32_t s = 0; s < kDefaultLogicalSlots; ++s) {
        for (uint32_t j = 0; j < tenants; ++j) {
          char name[40];
          std::snprintf(name, sizeof(name), "dir_slot%02u_tenant%u_ops", s, j + 1);
          reg.GetCounter(name)->SetProvider(
              [this, s, j]() { return slot_tenant_ops_[s * slot_tenants_ + j]; });
        }
      }
    }
  }
}

RpcAcceptStat DirServer::HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                    ServiceCost& cost) {
  if (call.prog != kNfsProgram || call.vers != kNfsVersion) {
    return RpcAcceptStat::kProgUnavail;
  }
  obs::Profiler::Scope prof(profiler(), obs::ProfScope::kDirNameOp);
  const NfsProc proc = static_cast<NfsProc>(call.proc);
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  ++local_ops_;
  if (call.proc < kNfsProcCount) {
    ++proc_counts_[call.proc];
  }

  if (recovering_ || adopting_ > 0) {
    EncodeErrorFor(proc, Nfsstat3::kErrJukebox, reply);
    return RpcAcceptStat::kSuccess;
  }

  XdrDecoder dec(call.body);
  switch (proc) {
    case NfsProc::kNull:
      return RpcAcceptStat::kSuccess;
    case NfsProc::kGetattr: {
      Result<GetattrArgs> args = GetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedByFileid(args->object.fileid())) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      HandleGetattr(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kSetattr: {
      Result<SetattrArgs> args = SetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedByFileid(args->object.fileid())) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      HandleSetattr(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kLookup: {
      Result<DirOpArgs> args = DirOpArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedNameOp(args->dir, args->name)) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      NoteSlotOp(args->dir, args->name, call.cred.uid);
      HandleLookup(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kAccess: {
      Result<AccessArgs> args = AccessArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedByFileid(args->object.fileid())) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      HandleAccess(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kReadlink: {
      Result<GetattrArgs> args = GetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleReadlink(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kCreate: {
      Result<CreateArgs> args = CreateArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedNameOp(args->dir, args->name)) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      NoteSlotOp(args->dir, args->name, call.cred.uid);
      HandleCreate(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kMkdir: {
      Result<MkdirArgs> args = MkdirArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      NoteSlotOp(args->dir, args->name, call.cred.uid);
      HandleMkdir(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kSymlink: {
      Result<SymlinkArgs> args = SymlinkArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      NoteSlotOp(args->dir, args->name, call.cred.uid);
      HandleSymlink(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kRemove:
    case NfsProc::kRmdir: {
      Result<DirOpArgs> args = DirOpArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedNameOp(args->dir, args->name)) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      NoteSlotOp(args->dir, args->name, call.cred.uid);
      HandleRemove(*args, proc == NfsProc::kRmdir, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kRename: {
      Result<RenameArgs> args = RenameArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      // A rename heats both name slots: the source entry is erased and the
      // target inserted, each on its fingerprint's owner.
      NoteSlotOp(args->from_dir, args->from_name, call.cred.uid);
      NoteSlotOp(args->to_dir, args->to_name, call.cred.uid);
      HandleRename(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kLink: {
      Result<LinkArgs> args = LinkArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      NoteSlotOp(args->dir, args->name, call.cred.uid);
      HandleLink(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus: {
      Result<ReaddirArgs> args = ReaddirArgs::Decode(dec, proc == NfsProc::kReaddirplus);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      if (MisroutedByFileid(args->dir.fileid())) {
        MisdirectReply(proc, reply);
        return RpcAcceptStat::kSuccess;
      }
      HandleReaddir(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kFsstat: {
      HandleFsstat(reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kFsinfo: {
      Result<GetattrArgs> args = GetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleFsinfo(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    default:
      return RpcAcceptStat::kProcUnavail;
  }
}

}  // namespace slice
