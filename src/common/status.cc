#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace slice {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kCorrupt:
      return "CORRUPT";
    case StatusCode::kMisdirected:
      return "MISDIRECTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "SLICE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace slice
