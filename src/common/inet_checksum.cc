#include "src/common/inet_checksum.h"

#include <bit>
#include <cstring>

#include "src/common/status.h"

namespace slice {

uint32_t OnesComplementSum(ByteSpan data, uint32_t initial) {
  // Word-at-a-time RFC 1071: one's-complement addition is associative and
  // byte-order independent, so the bulk runs over native 64-bit loads (each
  // split into 32-bit halves so carries accumulate in the upper half of a
  // 64-bit accumulator) and only the final folded 16 bits are byte-swapped
  // back to the big-endian pair convention the callers chain in `initial`.
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t acc = 0;
  while (n >= 32) {
    uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    std::memcpy(&w2, p + 16, 8);
    std::memcpy(&w3, p + 24, 8);
    acc += (w0 & 0xffffffffu) + (w0 >> 32);
    acc += (w1 & 0xffffffffu) + (w1 >> 32);
    acc += (w2 & 0xffffffffu) + (w2 >> 32);
    acc += (w3 & 0xffffffffu) + (w3 >> 32);
    p += 32;
    n -= 32;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    acc += (w & 0xffffffffu) + (w >> 32);
    p += 8;
    n -= 8;
  }
  while (n >= 2) {
    uint16_t h;
    std::memcpy(&h, p, 2);
    acc += h;
    p += 2;
    n -= 2;
  }
  uint32_t sum32 = static_cast<uint32_t>((acc & 0xffffffffu) + (acc >> 32));
  sum32 = (sum32 & 0xffff) + (sum32 >> 16);
  sum32 = (sum32 & 0xffff) + (sum32 >> 16);
  uint16_t native = static_cast<uint16_t>(sum32);
  if constexpr (std::endian::native == std::endian::little) {
    native = static_cast<uint16_t>((native << 8) | (native >> 8));
  }
  uint32_t sum = initial + native;
  if (n != 0) {
    sum += static_cast<uint32_t>(*p) << 8;  // odd trailing byte, zero-padded
  }
  return sum;
}

uint16_t IncrementalChecksumUpdate(uint16_t old_checksum, ByteSpan old_bytes,
                                   ByteSpan new_bytes) {
  SLICE_CHECK(old_bytes.size() == new_bytes.size());
  SLICE_CHECK(old_bytes.size() % 2 == 0);

  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  uint32_t sum = static_cast<uint16_t>(~old_checksum);
  for (size_t i = 0; i + 1 < old_bytes.size(); i += 2) {
    const uint16_t m = static_cast<uint16_t>((old_bytes[i] << 8) | old_bytes[i + 1]);
    const uint16_t mp = static_cast<uint16_t>((new_bytes[i] << 8) | new_bytes[i + 1]);
    sum += static_cast<uint16_t>(~m);
    sum += mp;
  }
  return static_cast<uint16_t>(~FoldSum(sum));
}

}  // namespace slice
