#include "src/common/inet_checksum.h"

#include "src/common/status.h"

namespace slice {

uint32_t OnesComplementSum(ByteSpan data, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;  // odd trailing byte, zero-padded
  }
  return sum;
}

uint16_t IncrementalChecksumUpdate(uint16_t old_checksum, ByteSpan old_bytes,
                                   ByteSpan new_bytes) {
  SLICE_CHECK(old_bytes.size() == new_bytes.size());
  SLICE_CHECK(old_bytes.size() % 2 == 0);

  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  uint32_t sum = static_cast<uint16_t>(~old_checksum);
  for (size_t i = 0; i + 1 < old_bytes.size(); i += 2) {
    const uint16_t m = static_cast<uint16_t>((old_bytes[i] << 8) | old_bytes[i + 1]);
    const uint16_t mp = static_cast<uint16_t>((new_bytes[i] << 8) | new_bytes[i + 1]);
    sum += static_cast<uint16_t>(~m);
    sum += mp;
  }
  return static_cast<uint16_t>(~FoldSum(sum));
}

}  // namespace slice
