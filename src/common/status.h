// Lightweight status / result types used across the Slice codebase.
//
// Error handling policy (per C++ Core Guidelines E.*): recoverable,
// expected failures travel as Status / Result<T> return values; programming
// errors abort via SLICE_CHECK. Exceptions are not used on hot paths.
#ifndef SLICE_COMMON_STATUS_H_
#define SLICE_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace slice {

// Broad error taxonomy. NFS-level errors (nfsstat3) are carried separately in
// protocol replies; StatusCode covers library/transport level failures.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,     // transient: retry may succeed (e.g. dropped packet)
  kTimedOut,
  kCorrupt,         // parse / integrity failure
  kMisdirected,     // request routed to a server that does not own the item
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// A cheap value-semantic status: code plus optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Result<T>: either a value or a Status (never both). Modeled after
// absl::StatusOr, minimal surface.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : rep_(std::move(value)) {}                 // NOLINT
  Result(Status status) : rep_(std::move(status)) {}          // NOLINT
  Result(StatusCode code, std::string message)
      : rep_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

#define SLICE_CHECK(expr)                                 \
  do {                                                    \
    if (!(expr)) {                                        \
      ::slice::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                     \
  } while (0)

#define SLICE_RETURN_IF_ERROR(expr)        \
  do {                                     \
    ::slice::Status _st = (expr);          \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

#define SLICE_INTERNAL_CONCAT2(a, b) a##b
#define SLICE_INTERNAL_CONCAT(a, b) SLICE_INTERNAL_CONCAT2(a, b)

#define SLICE_ASSIGN_OR_RETURN(lhs, expr) \
  SLICE_ASSIGN_OR_RETURN_IMPL(SLICE_INTERNAL_CONCAT(_slice_res_, __LINE__), lhs, expr)

#define SLICE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

}  // namespace slice

#endif  // SLICE_COMMON_STATUS_H_
