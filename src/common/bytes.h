// Byte-buffer helpers: big-endian (network order) scalar packing used by the
// packet, RPC and XDR layers, plus hex formatting for diagnostics.
#ifndef SLICE_COMMON_BYTES_H_
#define SLICE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace slice {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v >> 32));
  PutU32(p + 4, static_cast<uint32_t>(v));
}

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>((static_cast<uint16_t>(p[0]) << 8) | p[1]);
}

inline uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline uint64_t GetU64(const uint8_t* p) {
  return (static_cast<uint64_t>(GetU32(p)) << 32) | GetU32(p + 4);
}

inline void AppendU32(Bytes& out, uint32_t v) {
  uint8_t tmp[4];
  PutU32(tmp, v);
  out.insert(out.end(), tmp, tmp + 4);
}

inline void AppendU64(Bytes& out, uint64_t v) {
  uint8_t tmp[8];
  PutU64(tmp, v);
  out.insert(out.end(), tmp, tmp + 8);
}

std::string HexDump(ByteSpan data, size_t max_bytes = 64);
std::string ToHex(ByteSpan data);

}  // namespace slice

#endif  // SLICE_COMMON_BYTES_H_
