// MD5 message digest, implemented from RFC 1321. Slice uses MD5 as the
// routing fingerprint for name hashing, mkdir switching and small-file server
// selection (paper §4.1: "MD5 yields a combination of balanced distribution
// and low cost that is superior to competing hash functions").
//
// This is NOT used for security here — only for balanced request routing.
#ifndef SLICE_COMMON_MD5_H_
#define SLICE_COMMON_MD5_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/common/bytes.h"

namespace slice {

using Md5Digest = std::array<uint8_t, 16>;

// Incremental MD5 context.
class Md5 {
 public:
  Md5() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  void Update(std::string_view data) {
    Update(ByteSpan(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  }
  // Finalizes and returns the digest. The context must be Reset() before reuse.
  Md5Digest Finish();

  static Md5Digest Hash(ByteSpan data) {
    Md5 ctx;
    ctx.Update(data);
    return ctx.Finish();
  }
  static Md5Digest Hash(std::string_view data) {
    Md5 ctx;
    ctx.Update(data);
    return ctx.Finish();
  }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// First 8 bytes of the digest as a little-endian integer: the fingerprint
// form used by routing tables and hash chains.
inline uint64_t Md5Fingerprint64(const Md5Digest& d) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | d[static_cast<size_t>(i)];
  }
  return v;
}

}  // namespace slice

#endif  // SLICE_COMMON_MD5_H_
