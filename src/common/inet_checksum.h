// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// The µproxy rewrites IP addresses and UDP ports in intercepted NFS packets;
// like the paper's prototype (which derived its code from FreeBSD NAT), it
// adjusts checksums incrementally so the cost is proportional to the number
// of modified bytes, not the packet size.
#ifndef SLICE_COMMON_INET_CHECKSUM_H_
#define SLICE_COMMON_INET_CHECKSUM_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace slice {

// One's-complement sum over `data`, folded to 16 bits (not yet inverted).
// `initial` lets callers chain sums (e.g. pseudo-header + payload).
uint32_t OnesComplementSum(ByteSpan data, uint32_t initial = 0);

// Fold a 32-bit running sum to 16 bits.
inline uint16_t FoldSum(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(sum);
}

// Full Internet checksum: inverted folded one's-complement sum.
inline uint16_t InetChecksum(ByteSpan data, uint32_t initial = 0) {
  return static_cast<uint16_t>(~FoldSum(OnesComplementSum(data, initial)));
}

// RFC 1624 incremental update: given the old checksum and an in-place field
// change old_bytes -> new_bytes (16-bit aligned within the checksummed data),
// returns the new checksum without touching the rest of the packet.
// old_bytes and new_bytes must have equal, even sizes.
uint16_t IncrementalChecksumUpdate(uint16_t old_checksum, ByteSpan old_bytes, ByteSpan new_bytes);

}  // namespace slice

#endif  // SLICE_COMMON_INET_CHECKSUM_H_
