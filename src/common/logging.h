// Minimal leveled logging. Off by default above kWarning so benchmarks stay
// quiet; tests may raise verbosity via SetLogLevel.
#ifndef SLICE_COMMON_LOGGING_H_
#define SLICE_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace slice {

enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogLine(LogLevel level, const char* file, int line, const std::string& message);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SLICE_LOG(level)                                                     \
  if (::slice::GetLogLevel() > ::slice::LogLevel::level) {                   \
  } else                                                                     \
    ::slice::internal::LogMessage(::slice::LogLevel::level, __FILE__, __LINE__).stream()

#define SLICE_DLOG SLICE_LOG(kDebug)
#define SLICE_ILOG SLICE_LOG(kInfo)
#define SLICE_WLOG SLICE_LOG(kWarning)
#define SLICE_ELOG SLICE_LOG(kError)

}  // namespace slice

#endif  // SLICE_COMMON_LOGGING_H_
