// Non-cryptographic hashes. FNV-1a is the "competing hash function" used by
// the hash-choice ablation bench; MixU64 is a SplitMix64 finalizer used where
// we only need to scramble an integer key (e.g. fileID -> logical server).
#ifndef SLICE_COMMON_HASH_H_
#define SLICE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

#include "src/common/bytes.h"

namespace slice {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t Fnv1a64(ByteSpan data, uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = kFnvOffsetBasis) {
  return Fnv1a64(ByteSpan(reinterpret_cast<const uint8_t*>(data.data()), data.size()), seed);
}

// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace slice

#endif  // SLICE_COMMON_HASH_H_
