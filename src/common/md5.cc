#include "src/common/md5.h"

#include <bit>

namespace slice {
namespace {

inline uint32_t RotL(uint32_t x, uint32_t n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t Bswap32(uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) | (v << 24);
}

// Per-round sine-derived constants, RFC 1321 §3.4.
constexpr uint32_t kT[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

constexpr uint32_t kShift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                                 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                                 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                                 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

}  // namespace

void Md5::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Md5::ProcessBlock(const uint8_t block[64]) {
  // RFC 1321: message words are little-endian. Whole-word memcpy loads
  // (byte-swapped on big-endian hosts) instead of four shifted byte loads —
  // the fingerprint path hashes every routed name, so this is hot.
  uint32_t m[16];
  std::memcpy(m, block, 64);
  if constexpr (std::endian::native == std::endian::big) {
    for (int i = 0; i < 16; ++i) m[i] = Bswap32(m[i]);
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];

  for (int i = 0; i < 64; ++i) {
    uint32_t f = 0;
    int g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const uint32_t tmp = d;
    d = c;
    c = b;
    b = b + RotL(a + f + kT[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(ByteSpan data) {
  bit_count_ += static_cast<uint64_t>(data.size()) * 8;
  size_t offset = 0;

  if (buffer_len_ > 0) {
    const size_t need = 64 - buffer_len_;
    const size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }

  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }

  if (offset < data.size()) {
    const size_t rest = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, rest);
    buffer_len_ = rest;
  }
}

Md5Digest Md5::Finish() {
  const uint64_t total_bits = bit_count_;

  // Append 0x80 then zeros until 56 mod 64, then the 64-bit little-endian
  // length.
  uint8_t pad[72] = {0x80};
  const size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  Update(ByteSpan(pad, pad_len));
  bit_count_ -= pad_len * 8;  // padding does not count toward the message length

  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(total_bits >> (8 * i));
  }
  Update(ByteSpan(len_bytes, 8));

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) {
    digest[static_cast<size_t>(i * 4)] = static_cast<uint8_t>(state_[i]);
    digest[static_cast<size_t>(i * 4 + 1)] = static_cast<uint8_t>(state_[i] >> 8);
    digest[static_cast<size_t>(i * 4 + 2)] = static_cast<uint8_t>(state_[i] >> 16);
    digest[static_cast<size_t>(i * 4 + 3)] = static_cast<uint8_t>(state_[i] >> 24);
  }
  return digest;
}

}  // namespace slice
