#include "src/common/bytes.h"

namespace slice {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::string ToHex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string HexDump(ByteSpan data, size_t max_bytes) {
  const size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  std::string out = ToHex(data.subspan(0, n));
  if (n < data.size()) {
    out += "... (";
    out += std::to_string(data.size());
    out += " bytes)";
  }
  return out;
}

}  // namespace slice
