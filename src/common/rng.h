// Deterministic PRNG (xoshiro256**) with convenience distributions.
// Simulation code never uses std::random_device or global state: every
// component takes an explicitly seeded Rng so experiments replay exactly.
#ifndef SLICE_COMMON_RNG_H_
#define SLICE_COMMON_RNG_H_

#include <cstdint>

#include "src/common/hash.h"

namespace slice {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5e1ce5eedull) {
    // SplitMix64 seeding per xoshiro reference implementation.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ull;
      s = MixU64(x);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = RotL(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = RotL(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Exponentially distributed with the given mean (for inter-arrival times).
  double NextExponential(double mean);

  // Forks an independent stream; deterministic function of current state.
  Rng Fork() { return Rng(NextU64() ^ 0xf0f0f0f0f0f0f0f0ull); }

 private:
  static uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace slice

#endif  // SLICE_COMMON_RNG_H_
