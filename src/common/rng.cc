#include "src/common/rng.h"

#include <cmath>

namespace slice {

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-12;
  }
  return -mean * std::log(u);
}

}  // namespace slice
