// Block-service coordinator (paper §2.2, §3.3.2, §4.2): preserves atomicity
// of file operations that span multiple storage sites — remove/truncate,
// consistent write commitment, and mirrored writes — via an intention log,
// and manages optional per-file block maps for dynamic I/O placement.
//
// Protocol: the µproxy logs an intention before a multi-site operation and
// clears it with a completion message afterwards. If the completion does not
// arrive within a time bound, the coordinator assumes the µproxy lost its
// soft state and re-executes the operation itself (every recovery action is
// idempotent). A restarted coordinator rebuilds its pending-intent table by
// scanning its own log, which — like every Slice manager — is backed by an
// object in the storage array.
#ifndef SLICE_COORD_COORDINATOR_H_
#define SLICE_COORD_COORDINATOR_H_

#include <map>
#include <memory>
#include <unordered_map>

#include "src/coord/coord_proto.h"
#include "src/dir/wal.h"
#include "src/nfs/nfs_client.h"
#include "src/rpc/rpc_server.h"

namespace slice {

struct CoordinatorParams {
  uint64_t volume_secret = 0;
  double op_cpu_us = 40.0;
  SimTime intent_timeout = FromSeconds(2);
  // Dynamic block maps assign this many storage sites round-robin.
  uint32_t num_storage_sites = 1;
  // Bulk striping unit; must match the µproxies' so degraded-region resync
  // reads the surviving replica from the right node.
  uint32_t stripe_unit = 32768;
  // WAL backing (intents + block maps); disabled when addr == 0.
  Endpoint backing_node;
  FileHandle backing_object;
};

class Coordinator : public RpcServerNode {
 public:
  // `storage_nodes` and `small_file_servers` are the recovery fan-out
  // targets for orphaned intentions.
  Coordinator(Network& net, EventQueue& queue, NetAddr addr, CoordinatorParams params,
              std::vector<Endpoint> storage_nodes, std::vector<Endpoint> small_file_servers);

  size_t pending_intents() const { return intents_.size(); }
  uint64_t recoveries_run() const { return recoveries_run_; }
  uint64_t maps_assigned() const { return maps_assigned_; }
  bool recovering() const { return recovering_; }

  // Degraded-region resync (mirrored-partner promotion, paper §3.3.1): while
  // a replica node is down, µproxies log the regions it missed; when the
  // ensemble manager reports the node back, RepairNode copies each region
  // from a surviving replica onto the rejoined node.
  void RepairNode(uint32_t node);
  size_t degraded_count(uint32_t node) const {
    const auto it = degraded_.find(node);
    return it == degraded_.end() ? 0 : it->second.size();
  }
  uint64_t repairs_run() const { return repairs_run_; }

  void FlushLog() {
    if (wal_) {
      wal_->Flush();
    }
  }

  // Intent-log appends and recovery fan-outs join the requesting trace.
  void set_tracer(obs::Tracer* tracer) override {
    RpcServerNode::set_tracer(tracer);
    for (auto& client : node_clients_) {
      client->set_tracer(tracer);
    }
    if (wal_) {
      wal_->set_tracer(tracer);
    }
  }

 protected:
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override;
  void OnRestart() override;

 private:
  struct Intent {
    IntentOp op;
    FileHandle file;
    uint64_t arg;
    SimTime logged_at;
  };

  uint64_t LogIntent(const LogIntentArgs& args, bool log);
  void Complete(uint64_t intent_id, bool log);
  void ArmProbe(uint64_t intent_id);
  // Executes the intent's recovery action against all storage sites.
  void RunRecovery(uint64_t intent_id);

  GetMapRes GetOrAssignMap(const GetMapArgs& args);
  void LogMapAssignment(uint64_t fileid, uint64_t block, uint32_t site);
  void ReplayRecord(ByteSpan record);

  struct DegradedRegion {
    FileHandle file;
    uint64_t offset;
    uint32_t count;
  };
  void LogDegraded(const DegradedArgs& args, bool log);
  void LogRepaired(uint32_t node, const DegradedRegion& region);
  void RepairRegion(uint32_t node, DegradedRegion region);

  CoordinatorParams params_;
  std::vector<Endpoint> storage_nodes_;
  std::vector<Endpoint> small_file_servers_;
  std::vector<std::unique_ptr<NfsClient>> node_clients_;  // storage then sfs
  std::unique_ptr<WriteAheadLog> wal_;
  std::unordered_map<uint64_t, Intent> intents_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> block_maps_;  // fileid -> site per block
  // Regions a dead replica missed, keyed by storage-node index (std::map for
  // deterministic repair order).
  std::map<uint32_t, std::vector<DegradedRegion>> degraded_;
  uint64_t next_intent_id_ = 1;
  uint64_t recoveries_run_ = 0;
  uint64_t maps_assigned_ = 0;
  uint64_t repairs_run_ = 0;
  bool recovering_ = false;
};

}  // namespace slice

#endif  // SLICE_COORD_COORDINATOR_H_
