#include "src/coord/coord_proto.h"

namespace slice {

void LogIntentArgs::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(op));
  EncodeFileHandle(enc, file);
  enc.PutUint64(arg);
}

Result<LogIntentArgs> LogIntentArgs::Decode(XdrDecoder& dec) {
  LogIntentArgs args;
  SLICE_ASSIGN_OR_RETURN(uint32_t op_raw, dec.GetUint32());
  if (op_raw < 1 || op_raw > 4) {
    return Status(StatusCode::kCorrupt, "coord: bad intent op");
  }
  args.op = static_cast<IntentOp>(op_raw);
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.arg, dec.GetUint64());
  return args;
}

void LogIntentRes::Encode(XdrEncoder& enc) const { enc.PutUint64(intent_id); }

Result<LogIntentRes> LogIntentRes::Decode(XdrDecoder& dec) {
  LogIntentRes res;
  SLICE_ASSIGN_OR_RETURN(res.intent_id, dec.GetUint64());
  return res;
}

void CompleteArgs::Encode(XdrEncoder& enc) const { enc.PutUint64(intent_id); }

Result<CompleteArgs> CompleteArgs::Decode(XdrDecoder& dec) {
  CompleteArgs args;
  SLICE_ASSIGN_OR_RETURN(args.intent_id, dec.GetUint64());
  return args;
}

void CompleteRes::Encode(XdrEncoder& enc) const { enc.PutBool(acknowledged); }

Result<CompleteRes> CompleteRes::Decode(XdrDecoder& dec) {
  CompleteRes res;
  SLICE_ASSIGN_OR_RETURN(res.acknowledged, dec.GetBool());
  return res;
}

void GetMapArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, file);
  enc.PutUint64(first_block);
  enc.PutUint32(count);
  enc.PutBool(allocate);
}

Result<GetMapArgs> GetMapArgs::Decode(XdrDecoder& dec) {
  GetMapArgs args;
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.first_block, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.count, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(args.allocate, dec.GetBool());
  return args;
}

void DegradedArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, file);
  enc.PutUint64(offset);
  enc.PutUint32(count);
  enc.PutUint32(node);
}

Result<DegradedArgs> DegradedArgs::Decode(XdrDecoder& dec) {
  DegradedArgs args;
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.offset, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.count, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(args.node, dec.GetUint32());
  return args;
}

void DegradedRes::Encode(XdrEncoder& enc) const { enc.PutBool(acknowledged); }

Result<DegradedRes> DegradedRes::Decode(XdrDecoder& dec) {
  DegradedRes res;
  SLICE_ASSIGN_OR_RETURN(res.acknowledged, dec.GetBool());
  return res;
}

void GetMapRes::Encode(XdrEncoder& enc) const {
  enc.PutUint64(first_block);
  enc.PutUint32(static_cast<uint32_t>(sites.size()));
  for (uint32_t site : sites) {
    enc.PutUint32(site);
  }
}

Result<GetMapRes> GetMapRes::Decode(XdrDecoder& dec) {
  GetMapRes res;
  SLICE_ASSIGN_OR_RETURN(res.first_block, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(uint32_t n, dec.GetUint32());
  if (n > 65536) {
    return Status(StatusCode::kCorrupt, "coord: oversized map fragment");
  }
  for (uint32_t i = 0; i < n; ++i) {
    SLICE_ASSIGN_OR_RETURN(uint32_t site, dec.GetUint32());
    res.sites.push_back(site);
  }
  return res;
}

}  // namespace slice
