// Wire protocol between µproxies and block-service coordinators (paper
// §2.2/§3.3.2/§4.2): intention logging for multi-site atomicity, completion
// notifications, and per-file block-map fetch for dynamic I/O placement.
#ifndef SLICE_COORD_COORD_PROTO_H_
#define SLICE_COORD_COORD_PROTO_H_

#include <vector>

#include "src/nfs/nfs_xdr.h"

namespace slice {

constexpr uint32_t kCoordProgram = 395620;
constexpr uint32_t kCoordVersion = 1;

enum class CoordProc : uint32_t {
  kNull = 0,
  kLogIntent = 1,
  kComplete = 2,
  kGetMap = 3,
  kLogDegraded = 4,
};

// What the in-flight multi-site operation is; recovery re-executes it
// idempotently if the µproxy dies before completing.
enum class IntentOp : uint32_t {
  kRemove = 1,        // remove file data on all storage sites
  kTruncate = 2,      // truncate file data to `arg` bytes on all sites
  kCommit = 3,        // make unstable writes durable on all sites
  kMirrorWrite = 4,   // mirrored writes in flight; recovery forces a commit
};

struct LogIntentArgs {
  IntentOp op = IntentOp::kRemove;
  FileHandle file;
  uint64_t arg = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<LogIntentArgs> Decode(XdrDecoder& dec);
};

struct LogIntentRes {
  uint64_t intent_id = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<LogIntentRes> Decode(XdrDecoder& dec);
};

struct CompleteArgs {
  uint64_t intent_id = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<CompleteArgs> Decode(XdrDecoder& dec);
};

struct CompleteRes {
  bool acknowledged = true;
  void Encode(XdrEncoder& enc) const;
  static Result<CompleteRes> Decode(XdrDecoder& dec);
};

struct GetMapArgs {
  FileHandle file;
  uint64_t first_block = 0;
  uint32_t count = 0;
  bool allocate = false;  // assign placements for unmapped blocks (writes)
  void Encode(XdrEncoder& enc) const;
  static Result<GetMapArgs> Decode(XdrDecoder& dec);
};

struct GetMapRes {
  uint64_t first_block = 0;
  // Storage-node index per block; 0xffffffff = unmapped (read of a hole).
  std::vector<uint32_t> sites;
  void Encode(XdrEncoder& enc) const;
  static Result<GetMapRes> Decode(XdrDecoder& dec);
};

// A mirrored write that could not reach a (dead) replica: the µproxy reports
// the missing region so the coordinator can resync it from a surviving
// replica when the node rejoins.
struct DegradedArgs {
  FileHandle file;
  uint64_t offset = 0;
  uint32_t count = 0;
  uint32_t node = 0;  // storage node missing the data
  void Encode(XdrEncoder& enc) const;
  static Result<DegradedArgs> Decode(XdrDecoder& dec);
};

struct DegradedRes {
  bool acknowledged = true;
  void Encode(XdrEncoder& enc) const;
  static Result<DegradedRes> Decode(XdrDecoder& dec);
};

constexpr uint32_t kUnmappedBlock = 0xffffffff;

}  // namespace slice

#endif  // SLICE_COORD_COORD_PROTO_H_
