#include "src/coord/coordinator.h"

#include "src/common/logging.h"

namespace slice {
namespace {

enum class CoordLogOp : uint32_t {
  kIntent = 1,
  kComplete = 2,
  kMapAssign = 3,
  kDegraded = 4,
  kRepaired = 5,
};

constexpr NetPort kCoordPort = 3049;

}  // namespace

Coordinator::Coordinator(Network& net, EventQueue& queue, NetAddr addr,
                         CoordinatorParams params, std::vector<Endpoint> storage_nodes,
                         std::vector<Endpoint> small_file_servers)
    : RpcServerNode(net, queue, addr, kCoordPort),
      params_(params),
      storage_nodes_(std::move(storage_nodes)),
      small_file_servers_(std::move(small_file_servers)) {
  for (const Endpoint& node : storage_nodes_) {
    node_clients_.push_back(std::make_unique<NfsClient>(host(), queue, node));
  }
  for (const Endpoint& node : small_file_servers_) {
    node_clients_.push_back(std::make_unique<NfsClient>(host(), queue, node));
  }
  if (params_.backing_node.addr != 0) {
    wal_ = std::make_unique<WriteAheadLog>(host(), queue, params_.backing_node,
                                           params_.backing_object);
  }
}

uint64_t Coordinator::LogIntent(const LogIntentArgs& args, bool log) {
  const uint64_t id = next_intent_id_++;
  intents_[id] = Intent{args.op, args.file, args.arg, now()};
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(CoordLogOp::kIntent));
    rec.PutUint64(id);
    rec.PutEnum(static_cast<uint32_t>(args.op));
    rec.PutOpaqueVar(args.file.bytes());
    rec.PutUint64(args.arg);
    wal_->Append(rec.bytes());
  }
  ArmProbe(id);
  return id;
}

void Coordinator::Complete(uint64_t intent_id, bool log) {
  if (intents_.erase(intent_id) == 0) {
    return;
  }
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(CoordLogOp::kComplete));
    rec.PutUint64(intent_id);
    wal_->Append(rec.bytes());
  }
}

void Coordinator::ArmProbe(uint64_t intent_id) {
  queue().ScheduleAfter(params_.intent_timeout, [this, intent_id]() {
    if (failed() || !intents_.contains(intent_id)) {
      return;
    }
    SLICE_ILOG << "coordinator: intent " << intent_id << " timed out; running recovery";
    RunRecovery(intent_id);
  });
}

void Coordinator::RunRecovery(uint64_t intent_id) {
  const auto it = intents_.find(intent_id);
  if (it == intents_.end()) {
    return;
  }
  const Intent intent = it->second;
  ++recoveries_run_;

  // Idempotent fan-out across every storage site (and small-file servers for
  // remove/truncate, which affect data below the threshold too).
  const bool include_sfs = intent.op == IntentOp::kRemove || intent.op == IntentOp::kTruncate;
  const size_t targets = storage_nodes_.size() +
                         (include_sfs ? small_file_servers_.size() : 0);
  auto pending = std::make_shared<size_t>(targets);
  auto finish = [this, intent_id, pending]() {
    if (--*pending == 0) {
      Complete(intent_id, /*log=*/true);
    }
  };

  for (size_t i = 0; i < node_clients_.size(); ++i) {
    const bool is_sfs = i >= storage_nodes_.size();
    if (is_sfs && !include_sfs) {
      continue;
    }
    NfsClient& client = *node_clients_[i];
    switch (intent.op) {
      case IntentOp::kRemove:
        client.Remove(intent.file, "",
                      [finish](Status, const RemoveRes&) { finish(); });
        break;
      case IntentOp::kTruncate: {
        SetattrArgs sargs;
        sargs.object = intent.file;
        sargs.new_attributes.size = intent.arg;
        client.Setattr(sargs, [finish](Status, const SetattrRes&) { finish(); });
        break;
      }
      case IntentOp::kCommit:
      case IntentOp::kMirrorWrite:
        client.Commit(intent.file, 0, 0,
                      [finish](Status, const CommitRes&) { finish(); });
        break;
    }
  }
  if (targets == 0) {
    Complete(intent_id, /*log=*/true);
  }
}

void Coordinator::LogDegraded(const DegradedArgs& args, bool log) {
  std::vector<DegradedRegion>& regions = degraded_[args.node];
  // Coalesce exact duplicates (client retransmissions of the same write).
  for (const DegradedRegion& r : regions) {
    if (r.file == args.file && r.offset == args.offset && r.count == args.count) {
      return;
    }
  }
  regions.push_back(DegradedRegion{args.file, args.offset, args.count});
  if (log && wal_) {
    XdrEncoder rec;
    rec.PutEnum(static_cast<uint32_t>(CoordLogOp::kDegraded));
    rec.PutOpaqueVar(args.file.bytes());
    rec.PutUint64(args.offset);
    rec.PutUint32(args.count);
    rec.PutUint32(args.node);
    wal_->Append(rec.bytes());
  }
}

void Coordinator::LogRepaired(uint32_t node, const DegradedRegion& region) {
  if (!wal_) {
    return;
  }
  XdrEncoder rec;
  rec.PutEnum(static_cast<uint32_t>(CoordLogOp::kRepaired));
  rec.PutOpaqueVar(region.file.bytes());
  rec.PutUint64(region.offset);
  rec.PutUint32(region.count);
  rec.PutUint32(node);
  wal_->Append(rec.bytes());
}

void Coordinator::RepairNode(uint32_t node) {
  const auto it = degraded_.find(node);
  if (it == degraded_.end() || it->second.empty()) {
    return;
  }
  // Take ownership of the queue; regions that fail to copy are re-logged.
  std::vector<DegradedRegion> regions = std::move(it->second);
  degraded_.erase(it);
  SLICE_ILOG << "coordinator: resyncing " << regions.size()
             << " degraded regions onto node " << node;
  for (DegradedRegion& region : regions) {
    RepairRegion(node, std::move(region));
  }
}

void Coordinator::RepairRegion(uint32_t node, DegradedRegion region) {
  // Find a surviving replica: the mirror whose placement is not this node.
  const uint32_t num_nodes = static_cast<uint32_t>(storage_nodes_.size());
  const uint32_t replication =
      region.file.replication() == 0 ? 1 : region.file.replication();
  uint32_t source = node;
  for (uint32_t r = 0; r < replication; ++r) {
    const uint32_t site = StripeSiteFor(region.file, region.offset,
                                        params_.stripe_unit, num_nodes, r);
    if (site != node) {
      source = site;
      break;
    }
  }
  if (source == node || node >= node_clients_.size()) {
    // Unrepairable (no surviving replica) — drop rather than loop forever.
    LogRepaired(node, region);
    return;
  }
  NfsClient& src_client = *node_clients_[source];
  src_client.Read(
      region.file, region.offset, region.count,
      [this, node, region](Status st, const ReadRes& res) {
        if (failed()) {
          return;
        }
        if (!st.ok() || res.status != Nfsstat3::kOk) {
          LogDegraded(DegradedArgs{region.file, region.offset, region.count, node},
                      /*log=*/true);
          return;
        }
        node_clients_[node]->Write(
            region.file, region.offset, ByteSpan(res.data), StableHow::kFileSync,
            [this, node, region](Status wst, const WriteRes& wres) {
              if (failed()) {
                return;
              }
              if (!wst.ok() || wres.status != Nfsstat3::kOk) {
                LogDegraded(
                    DegradedArgs{region.file, region.offset, region.count, node},
                    /*log=*/true);
                return;
              }
              ++repairs_run_;
              LogRepaired(node, region);
            });
      });
}

GetMapRes Coordinator::GetOrAssignMap(const GetMapArgs& args) {
  GetMapRes res;
  res.first_block = args.first_block;
  std::vector<uint32_t>& map = block_maps_[args.file.fileid()];
  const uint64_t end = args.first_block + args.count;
  if (args.allocate && map.size() < end) {
    const size_t base = Fnv1a64(args.file.bytes()) % params_.num_storage_sites;
    for (uint64_t b = map.size(); b < end; ++b) {
      const uint32_t site = static_cast<uint32_t>((base + b) % params_.num_storage_sites);
      map.push_back(site);
      ++maps_assigned_;
      LogMapAssignment(args.file.fileid(), b, site);
    }
  }
  for (uint64_t b = args.first_block; b < end; ++b) {
    res.sites.push_back(b < map.size() ? map[b] : kUnmappedBlock);
  }
  return res;
}

void Coordinator::LogMapAssignment(uint64_t fileid, uint64_t block, uint32_t site) {
  if (!wal_) {
    return;
  }
  XdrEncoder rec;
  rec.PutEnum(static_cast<uint32_t>(CoordLogOp::kMapAssign));
  rec.PutUint64(fileid);
  rec.PutUint64(block);
  rec.PutUint32(site);
  wal_->Append(rec.bytes());
}

void Coordinator::ReplayRecord(ByteSpan record) {
  XdrDecoder dec(record);
  Result<uint32_t> op = dec.GetUint32();
  if (!op.ok()) {
    return;
  }
  switch (static_cast<CoordLogOp>(*op)) {
    case CoordLogOp::kIntent: {
      Result<uint64_t> id = dec.GetUint64();
      Result<uint32_t> intent_op = dec.GetUint32();
      Result<Bytes> fh = dec.GetOpaqueVar(64);
      Result<uint64_t> arg = dec.GetUint64();
      if (id.ok() && intent_op.ok() && fh.ok() && arg.ok() &&
          fh->size() == FileHandle::kSize) {
        intents_[*id] = Intent{static_cast<IntentOp>(*intent_op),
                               FileHandle::FromBytes(*fh), *arg, now()};
        next_intent_id_ = std::max(next_intent_id_, *id + 1);
      }
      break;
    }
    case CoordLogOp::kComplete: {
      Result<uint64_t> id = dec.GetUint64();
      if (id.ok()) {
        intents_.erase(*id);
        next_intent_id_ = std::max(next_intent_id_, *id + 1);
      }
      break;
    }
    case CoordLogOp::kMapAssign: {
      Result<uint64_t> fileid = dec.GetUint64();
      Result<uint64_t> block = dec.GetUint64();
      Result<uint32_t> site = dec.GetUint32();
      if (fileid.ok() && block.ok() && site.ok()) {
        std::vector<uint32_t>& map = block_maps_[*fileid];
        if (map.size() <= *block) {
          map.resize(*block + 1, kUnmappedBlock);
        }
        map[*block] = *site;
      }
      break;
    }
    case CoordLogOp::kDegraded:
    case CoordLogOp::kRepaired: {
      Result<Bytes> fh = dec.GetOpaqueVar(64);
      Result<uint64_t> offset = dec.GetUint64();
      Result<uint32_t> count = dec.GetUint32();
      Result<uint32_t> node = dec.GetUint32();
      if (!fh.ok() || !offset.ok() || !count.ok() || !node.ok() ||
          fh->size() != FileHandle::kSize) {
        break;
      }
      const FileHandle file = FileHandle::FromBytes(*fh);
      if (static_cast<CoordLogOp>(*op) == CoordLogOp::kDegraded) {
        LogDegraded(DegradedArgs{file, *offset, *count, *node}, /*log=*/false);
      } else {
        std::vector<DegradedRegion>& regions = degraded_[*node];
        std::erase_if(regions, [&](const DegradedRegion& r) {
          return r.file == file && r.offset == *offset && r.count == *count;
        });
        if (regions.empty()) {
          degraded_.erase(*node);
        }
      }
      break;
    }
  }
}

void Coordinator::OnRestart() {
  if (!wal_) {
    return;
  }
  wal_->DiscardBuffered();
  intents_.clear();
  block_maps_.clear();
  degraded_.clear();
  recovering_ = true;
  wal_->Replay([this](ByteSpan record) { ReplayRecord(record); },
               [this](Status st) {
                 if (!st.ok()) {
                   SLICE_ELOG << "coordinator: replay failed: " << st.ToString();
                 }
                 recovering_ = false;
                 SLICE_ILOG << "coordinator recovered; " << intents_.size()
                            << " in-flight intents";
                 // Operations that were in flight at the crash are finished
                 // (or effectively aborted) now.
                 std::vector<uint64_t> pending;
                 pending.reserve(intents_.size());
                 for (const auto& [id, intent] : intents_) {
                   (void)intent;
                   pending.push_back(id);
                 }
                 for (uint64_t id : pending) {
                   RunRecovery(id);
                 }
               });
}

RpcAcceptStat Coordinator::HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                      ServiceCost& cost) {
  if (call.prog != kCoordProgram || call.vers != kCoordVersion) {
    return RpcAcceptStat::kProgUnavail;
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  XdrDecoder dec(call.body);
  switch (static_cast<CoordProc>(call.proc)) {
    case CoordProc::kNull:
      return RpcAcceptStat::kSuccess;
    case CoordProc::kLogIntent: {
      Result<LogIntentArgs> args = LogIntentArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      LogIntentRes res;
      res.intent_id = LogIntent(*args, /*log=*/true);
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case CoordProc::kComplete: {
      Result<CompleteArgs> args = CompleteArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      Complete(args->intent_id, /*log=*/true);
      CompleteRes res;
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case CoordProc::kGetMap: {
      Result<GetMapArgs> args = GetMapArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      GetMapRes res = GetOrAssignMap(*args);
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case CoordProc::kLogDegraded: {
      Result<DegradedArgs> args = DegradedArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      LogDegraded(*args, /*log=*/true);
      DegradedRes res;
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    default:
      return RpcAcceptStat::kProcUnavail;
  }
}

}  // namespace slice
