// Disk timing model. Loosely parameterized after the Seagate Cheetah
// ST318404LC drives in the paper's testbed: each I/O pays an average
// positioning cost (seek + rotation) unless it is sequential with the
// previous I/O on the same disk, then transfers at the media rate. Requests
// queue FIFO at the arm.
#ifndef SLICE_SIM_DISK_H_
#define SLICE_SIM_DISK_H_

#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice {

struct DiskParams {
  double avg_position_ms = 5.0;   // average seek + rotational latency
  double media_mb_per_s = 33.0;   // sustained transfer rate
  double sequential_position_ms = 0.15;  // track-to-track when sequential
};

class SimDisk {
 public:
  explicit SimDisk(DiskParams params) : params_(params) {}

  // Submits an I/O of `bytes` at logical position `pos` (byte address within
  // the disk's flat space; used only for sequentiality detection). Returns
  // the completion time.
  SimTime SubmitIo(SimTime now, uint64_t pos, size_t bytes);

  uint64_t io_count() const { return arm_.jobs(); }
  SimTime total_busy() const { return arm_.total_busy_time(); }
  double UtilizationUpTo(SimTime horizon) const { return arm_.UtilizationUpTo(horizon); }
  void ResetStats() { arm_.Reset(); }

 private:
  DiskParams params_;
  BusyResource arm_;
  uint64_t next_sequential_pos_ = ~0ull;
};

// A storage node's disk complement: N independent arms behind one shared
// channel (the Dell 4400's single internal SCSI channel, which capped
// per-node disk bandwidth below the sum of the media rates).
class DiskArray {
 public:
  DiskArray(size_t num_disks, DiskParams params, double channel_mb_per_s);

  // Submits an I/O to disk `disk_index` (callers typically stripe by block).
  SimTime SubmitIo(SimTime now, size_t disk_index, uint64_t pos, size_t bytes);

  size_t num_disks() const { return disks_.size(); }
  SimDisk& disk(size_t i) { return disks_[i]; }
  const SimDisk& disk(size_t i) const { return disks_[i]; }

 private:
  std::vector<SimDisk> disks_;
  BusyResource channel_;
  double channel_ns_per_byte_;
};

}  // namespace slice

#endif  // SLICE_SIM_DISK_H_
