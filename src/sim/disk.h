// Disk timing model. Loosely parameterized after the Seagate Cheetah
// ST318404LC drives in the paper's testbed: each I/O pays an average
// positioning cost (seek + rotation) unless it is sequential with the
// previous I/O on the same disk, then transfers at the media rate. Requests
// queue FIFO at the arm.
#ifndef SLICE_SIM_DISK_H_
#define SLICE_SIM_DISK_H_

#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice {

struct DiskParams {
  double avg_position_ms = 5.0;   // average seek + rotational latency
  double media_mb_per_s = 33.0;   // sustained transfer rate
  double sequential_position_ms = 0.15;  // track-to-track when sequential
};

class SimDisk {
 public:
  explicit SimDisk(DiskParams params) : params_(params) {}

  // Submits an I/O of `bytes` at logical position `pos` (byte address within
  // the disk's flat space; used only for sequentiality detection). Returns
  // the completion time.
  SimTime SubmitIo(SimTime now, uint64_t pos, size_t bytes);

  uint64_t io_count() const { return arm_.jobs(); }
  SimTime total_busy() const { return arm_.total_busy_time(); }
  // Busy-time split: positioning (seek + rotation) vs media transfer. The
  // ratio distinguishes an arm thrashing on seeks from one streaming.
  SimTime total_position() const { return position_ns_; }
  SimTime total_transfer() const { return transfer_ns_; }
  // Time at which the arm drains its current FIFO backlog.
  SimTime busy_until() const { return arm_.busy_until(); }
  double UtilizationUpTo(SimTime horizon) const { return arm_.UtilizationUpTo(horizon); }
  void ResetStats() {
    arm_.Reset();
    position_ns_ = 0;
    transfer_ns_ = 0;
  }
  // Crash recovery: queued I/Os die with the node, so the arm's FIFO backlog
  // is dropped. Cumulative stats stay (they are history), and the head
  // position survives too — the platter does not move because the host
  // rebooted, so the first post-restart I/O can still be sequential.
  void ClearBacklog() { arm_.ClearBacklog(); }

  // Gray-failure hook (src/chaos): scales both the positioning and transfer
  // time of every subsequent I/O. A multiplier of ~20 models a disk that is
  // slow-but-alive — it still answers, so the heartbeat detector must not
  // declare its node dead. 1.0 restores nominal service times.
  void SetLatencyMultiplier(double multiplier) {
    latency_multiplier_ = multiplier > 0 ? multiplier : 1.0;
  }
  double latency_multiplier() const { return latency_multiplier_; }

 private:
  DiskParams params_;
  BusyResource arm_;
  uint64_t next_sequential_pos_ = ~0ull;
  SimTime position_ns_ = 0;
  SimTime transfer_ns_ = 0;
  double latency_multiplier_ = 1.0;
};

// A storage node's disk complement: N independent arms behind one shared
// channel (the Dell 4400's single internal SCSI channel, which capped
// per-node disk bandwidth below the sum of the media rates).
class DiskArray {
 public:
  DiskArray(size_t num_disks, DiskParams params, double channel_mb_per_s);

  // Submits an I/O to disk `disk_index` (callers typically stripe by block).
  SimTime SubmitIo(SimTime now, size_t disk_index, uint64_t pos, size_t bytes);

  size_t num_disks() const { return disks_.size(); }
  SimDisk& disk(size_t i) { return disks_[i]; }
  const SimDisk& disk(size_t i) const { return disks_[i]; }
  const BusyResource& channel() const { return channel_; }

  // Node-level aggregates across all arms, for the metrics providers.
  SimTime TotalBusy() const;
  SimTime TotalPosition() const;
  SimTime TotalTransfer() const;
  uint64_t TotalIos() const;
  // The furthest-out arm completion: how deep the worst FIFO backlog runs.
  SimTime MaxBusyUntil() const;

  // Gray-failure hook: applies the multiplier to every arm in the array.
  void SetLatencyMultiplier(double multiplier);

  // Crash recovery: drops every arm's and the channel's queued backlog (see
  // SimDisk::ClearBacklog). Without this, a restarted node kept servicing
  // its pre-crash I/O queue, so post-restart requests saw phantom seconds of
  // wait from work that should have died with the node.
  void ClearBacklog();

 private:
  std::vector<SimDisk> disks_;
  BusyResource channel_;
  double channel_ns_per_byte_;
};

}  // namespace slice

#endif  // SLICE_SIM_DISK_H_
