#include "src/sim/stats.h"

#include <bit>

namespace slice {

size_t LatencyStats::BucketIndex(SimTime v) {
  if (v < kSub) {
    return static_cast<size_t>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const uint32_t octave = static_cast<uint32_t>(msb) - kSubBits + 1;
  const uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
  return static_cast<size_t>(octave) * kSub + static_cast<size_t>(sub);
}

std::pair<SimTime, SimTime> LatencyStats::BucketBounds(size_t index) {
  if (index < kSub) {
    return {index, index + 1};
  }
  const uint64_t octave = index >> kSubBits;
  const uint64_t sub = index & (kSub - 1);
  const uint32_t shift = static_cast<uint32_t>(octave) - 1;
  const SimTime lo = (kSub + sub) << shift;
  return {lo, lo + (SimTime{1} << shift)};
}

SimTime LatencyStats::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  // Target the same sample the exact implementation would pick:
  // the (floor(rank)+1)-th smallest, rank = p/100 * (count-1).
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  const uint64_t target =
      std::min<uint64_t>(static_cast<uint64_t>(rank) + 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) {
      continue;
    }
    if (cumulative + in_bucket >= target) {
      const auto [lo, hi] = BucketBounds(i);
      const uint64_t before = target - cumulative;  // 1-based within bucket
      const double frac = (static_cast<double>(before) - 0.5) /
                          static_cast<double>(in_bucket);
      const SimTime est =
          lo + static_cast<SimTime>(frac * static_cast<double>(hi - lo));
      return std::clamp(est, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

void OpCounters::Add(std::string_view name, uint64_t delta) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second += delta;
  } else {
    entries_.emplace(std::string(name), delta);
  }
}

uint64_t OpCounters::Get(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second;
}

std::string OpCounters::ToString() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) {
      out += ", ";
    }
    out += key;
    out += "=";
    out += std::to_string(value);
  }
  return out;
}

}  // namespace slice
