#include "src/sim/stats.h"

namespace slice {

SimTime LatencyStats::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  std::sort(samples_.begin(), samples_.end());
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t idx = static_cast<size_t>(rank);
  return samples_[std::min(idx, samples_.size() - 1)];
}

void OpCounters::Add(const std::string& name, uint64_t delta) {
  for (auto& [key, value] : entries_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  entries_.emplace_back(name, delta);
}

uint64_t OpCounters::Get(const std::string& name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) {
      return value;
    }
  }
  return 0;
}

std::string OpCounters::ToString() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) {
      out += ", ";
    }
    out += key;
    out += "=";
    out += std::to_string(value);
  }
  return out;
}

}  // namespace slice
