// Discrete-event simulation core: a virtual-time event queue.
//
// All timing-sensitive Slice experiments (directory scaling, SFS throughput,
// bulk bandwidth) run on this clock; wall-clock benchmarks (µproxy CPU cost)
// use google-benchmark instead and never touch the simulator.
#ifndef SLICE_SIM_EVENT_QUEUE_H_
#define SLICE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/status.h"

namespace slice {

// Simulated time in nanoseconds since experiment start.
using SimTime = uint64_t;

constexpr SimTime kNanosPerMicro = 1000;
constexpr SimTime kNanosPerMilli = 1000 * 1000;
constexpr SimTime kNanosPerSec = 1000ull * 1000 * 1000;

inline double ToMillis(SimTime t) { return static_cast<double>(t) / 1e6; }
inline double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }
inline SimTime FromMicros(double us) { return static_cast<SimTime>(us * 1e3); }
inline SimTime FromMillis(double ms) { return static_cast<SimTime>(ms * 1e6); }
inline SimTime FromSeconds(double s) { return static_cast<SimTime>(s * 1e9); }

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  // Queued events that are not background events (see below).
  size_t foreground_pending() const { return foreground_pending_; }

  // Schedules `action` at absolute time `when` (clamped to now if earlier).
  // Events at equal times run in schedule order (FIFO), which keeps
  // experiments deterministic. Events scheduled while a background event is
  // executing inherit background status, so the whole causal chain of a
  // background timer (RPC sends, network hops, replies) stays background.
  void ScheduleAt(SimTime when, Action action);
  void ScheduleAfter(SimTime delay, Action action) { ScheduleAt(now_ + delay, std::move(action)); }

  // Background events model perpetual housekeeping (heartbeats, failure
  // sweeps). They run normally under RunOne/RunUntil, but RunUntilIdle does
  // not wait for them — otherwise a self-rearming timer would make it spin
  // forever.
  void ScheduleBackgroundAt(SimTime when, Action action);
  void ScheduleBackgroundAfter(SimTime delay, Action action) {
    ScheduleBackgroundAt(now_ + delay, std::move(action));
  }

  // --- batched drains (allocation-free scheduling) ---
  //
  // A drain event carries a plain function pointer and a sink instead of a
  // std::function, so scheduling one never allocates a closure. Drains obey
  // the same (time, seq) FIFO order as ordinary events. `guard`, when set, is
  // checked at dispatch: a false guard turns the drain into a no-op (the
  // owner died), mirroring the shared-alive-flag idiom used by closures.
  using DrainFn = void (*)(void* sink);
  void ScheduleDrainAt(SimTime when, DrainFn fn, void* sink,
                       std::shared_ptr<const bool> guard = nullptr);

  // Callable only from inside a running drain: if the queue's next event is
  // another drain for the same `sink` at the current time, consume it and
  // return true — the caller then processes one more unit of its own backlog
  // in this dispatch. Because absorption only ever takes the queue's *top*
  // event, it cannot reorder anything: any interleaved event (same time,
  // smaller seq) blocks absorption and runs first, exactly as if each drain
  // had fired separately. This is how same-instant packet arrivals at a host
  // coalesce into one event dispatch without perturbing determinism.
  bool AbsorbNextDrain(void* sink);

  // Runs the earliest event; returns false if the queue is empty.
  bool RunOne();
  // Runs until no foreground events remain (background events interleaved
  // before the last foreground event still run, in time order).
  void RunUntilIdle();
  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to `deadline`.
  void RunUntil(SimTime deadline);

  // Total events executed (diagnostics / runaway detection in tests).
  uint64_t executed() const { return executed_; }

  // Optional dispatch hook so the profiler can attribute event-loop
  // self-time (the DES machinery itself) as a wall-clock scope enclosing
  // every component handler. Plain function pointer + context — the sim
  // layer cannot depend on obs, and the unset path is a single branch per
  // dispatch. `begin` is true just before the handler runs, false just
  // after. Installed/removed by the ensemble around profiled runs.
  using DispatchHook = void (*)(void* ctx, bool begin);
  void SetDispatchHook(DispatchHook hook, void* ctx) {
    dispatch_hook_ = hook;
    dispatch_hook_ctx_ = ctx;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    bool background;
    Action action;                 // empty for drain events
    DrainFn drain_fn = nullptr;    // non-null marks a drain event
    void* drain_sink = nullptr;
    std::shared_ptr<const bool> guard;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void Push(SimTime when, Action action, bool background);

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t foreground_pending_ = 0;
  bool in_background_ = false;
  DispatchHook dispatch_hook_ = nullptr;
  void* dispatch_hook_ctx_ = nullptr;
};

// A serially reusable resource (a CPU, a disk arm, a link direction): jobs
// queue FIFO and each occupies the resource for its service time.
class BusyResource {
 public:
  // Returns the completion time of a job arriving at `now` with the given
  // service time, and marks the resource busy until then.
  SimTime Acquire(SimTime now, SimTime service) {
    const SimTime start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + service;
    busy_time_ += service;
    ++jobs_;
    return busy_until_;
  }

  SimTime busy_until() const { return busy_until_; }
  SimTime total_busy_time() const { return busy_time_; }
  uint64_t jobs() const { return jobs_; }
  double UtilizationUpTo(SimTime horizon) const {
    if (horizon == 0) {
      return 0.0;
    }
    const SimTime busy = busy_time_ < horizon ? busy_time_ : horizon;
    return static_cast<double>(busy) / static_cast<double>(horizon);
  }
  void Reset() {
    busy_until_ = 0;
    busy_time_ = 0;
    jobs_ = 0;
  }
  // Drops the queued backlog without touching the cumulative counters.
  // Models a crash: jobs waiting in the FIFO die with the node, but the
  // busy-time/job totals are history and stay monotonic for the metrics
  // plane.
  void ClearBacklog() { busy_until_ = 0; }

 private:
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
  uint64_t jobs_ = 0;
};

}  // namespace slice

#endif  // SLICE_SIM_EVENT_QUEUE_H_
