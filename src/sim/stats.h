// Experiment statistics: counters and latency aggregation with percentiles.
#ifndef SLICE_SIM_STATS_H_
#define SLICE_SIM_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "src/sim/event_queue.h"

namespace slice {

// Fixed-memory latency aggregator: count/sum/min/max are exact; percentiles
// come from a log-scale histogram (32 sub-buckets per power of two), so the
// relative quantile error is bounded by ~3% regardless of how many samples
// are recorded. Memory is a constant ~15 KB per instance — long-running
// workload generators no longer grow without bound.
class LatencyStats {
 public:
  void Record(SimTime latency) {
    ++count_;
    sum_ += latency;
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
    ++buckets_[BucketIndex(latency)];
  }

  uint64_t count() const { return count_; }
  SimTime sum() const { return sum_; }
  SimTime min() const { return count_ ? min_ : 0; }
  SimTime max() const { return max_; }
  double MeanMillis() const {
    if (count_ == 0) {
      return 0.0;
    }
    return ToMillis(sum_) / static_cast<double>(count_);
  }
  // p in [0, 100]. Interpolated within the containing bucket and clamped to
  // the exact [min, max] envelope.
  SimTime Percentile(double p) const;

  // Combines another aggregator into this one; with identical fixed bucket
  // layouts the merge is a bucket-wise sum and loses no precision relative
  // to recording every sample here directly.
  void Merge(const LatencyStats& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<SimTime>::max();
    max_ = 0;
    buckets_.fill(0);
  }

 private:
  // Sub-bucket resolution: 2^kSubBits linear sub-buckets per octave.
  static constexpr uint32_t kSubBits = 5;
  static constexpr uint32_t kSub = 1u << kSubBits;
  // Values < kSub get exact unit-width buckets; each of the 59 remaining
  // octaves (up to 2^64) contributes kSub sub-buckets.
  static constexpr size_t kNumBuckets = kSub + 59 * kSub;

  static size_t BucketIndex(SimTime v);
  // Inclusive-exclusive value range [lo, hi) covered by a bucket.
  static std::pair<SimTime, SimTime> BucketBounds(size_t index);

  uint64_t count_ = 0;
  SimTime sum_ = 0;
  SimTime min_ = std::numeric_limits<SimTime>::max();
  SimTime max_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

// Per-category operation counters with pretty-printing, used to report
// request routing distributions (how many ops each server class absorbed).
// Backed by an ordered map: O(log n) Add/Get and naturally deterministic
// (lexicographic) ToString() ordering. Heterogeneous (string_view) lookup
// means Add/Get on an existing key never allocates — metrics providers poll
// Get() at scrape time at zero amortized cost.
class OpCounters {
 public:
  void Add(std::string_view name, uint64_t delta = 1);
  uint64_t Get(std::string_view name) const;
  std::string ToString() const;
  void Reset() { entries_.clear(); }
  const std::map<std::string, uint64_t, std::less<>>& entries() const { return entries_; }

 private:
  std::map<std::string, uint64_t, std::less<>> entries_;
};

}  // namespace slice

#endif  // SLICE_SIM_STATS_H_
