// Experiment statistics: counters and latency aggregation with percentiles.
#ifndef SLICE_SIM_STATS_H_
#define SLICE_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice {

class LatencyStats {
 public:
  void Record(SimTime latency) {
    ++count_;
    sum_ += latency;
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
    samples_.push_back(latency);
  }

  uint64_t count() const { return count_; }
  SimTime min() const { return count_ ? min_ : 0; }
  SimTime max() const { return max_; }
  double MeanMillis() const {
    if (count_ == 0) {
      return 0.0;
    }
    return ToMillis(sum_) / static_cast<double>(count_);
  }
  // p in [0, 100].
  SimTime Percentile(double p) const;

  void Reset() {
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<SimTime>::max();
    max_ = 0;
    samples_.clear();
  }

 private:
  uint64_t count_ = 0;
  SimTime sum_ = 0;
  SimTime min_ = std::numeric_limits<SimTime>::max();
  SimTime max_ = 0;
  mutable std::vector<SimTime> samples_;
};

// Per-category operation counters with pretty-printing, used to report
// request routing distributions (how many ops each server class absorbed).
class OpCounters {
 public:
  void Add(const std::string& name, uint64_t delta = 1);
  uint64_t Get(const std::string& name) const;
  std::string ToString() const;
  void Reset() { entries_.clear(); }
  const std::vector<std::pair<std::string, uint64_t>>& entries() const { return entries_; }

 private:
  std::vector<std::pair<std::string, uint64_t>> entries_;
};

}  // namespace slice

#endif  // SLICE_SIM_STATS_H_
