#include "src/sim/disk.h"

namespace slice {

SimTime SimDisk::SubmitIo(SimTime now, uint64_t pos, size_t bytes) {
  const bool sequential = pos == next_sequential_pos_;
  next_sequential_pos_ = pos + bytes;

  const double position_ms =
      (sequential ? params_.sequential_position_ms : params_.avg_position_ms) *
      latency_multiplier_;
  const double transfer_ns = static_cast<double>(bytes) / (params_.media_mb_per_s * 1e6) *
                             1e9 * latency_multiplier_;
  position_ns_ += FromMillis(position_ms);
  transfer_ns_ += static_cast<SimTime>(transfer_ns);
  const SimTime service = FromMillis(position_ms) + static_cast<SimTime>(transfer_ns);
  return arm_.Acquire(now, service);
}

DiskArray::DiskArray(size_t num_disks, DiskParams params, double channel_mb_per_s)
    : channel_ns_per_byte_(1e9 / (channel_mb_per_s * 1e6)) {
  disks_.reserve(num_disks);
  for (size_t i = 0; i < num_disks; ++i) {
    disks_.emplace_back(params);
  }
}

SimTime DiskArray::SubmitIo(SimTime now, size_t disk_index, uint64_t pos, size_t bytes) {
  SLICE_CHECK(disk_index < disks_.size());
  const SimTime arm_done = disks_[disk_index].SubmitIo(now, pos, bytes);
  // The shared channel serializes the transfer portion of every I/O on this
  // node; model it as a resource that each I/O occupies for its wire time.
  const SimTime channel_service =
      static_cast<SimTime>(static_cast<double>(bytes) * channel_ns_per_byte_);
  const SimTime channel_done = channel_.Acquire(now, channel_service);
  return arm_done > channel_done ? arm_done : channel_done;
}

SimTime DiskArray::TotalBusy() const {
  SimTime total = 0;
  for (const SimDisk& disk : disks_) {
    total += disk.total_busy();
  }
  return total;
}

SimTime DiskArray::TotalPosition() const {
  SimTime total = 0;
  for (const SimDisk& disk : disks_) {
    total += disk.total_position();
  }
  return total;
}

SimTime DiskArray::TotalTransfer() const {
  SimTime total = 0;
  for (const SimDisk& disk : disks_) {
    total += disk.total_transfer();
  }
  return total;
}

uint64_t DiskArray::TotalIos() const {
  uint64_t total = 0;
  for (const SimDisk& disk : disks_) {
    total += disk.io_count();
  }
  return total;
}

void DiskArray::SetLatencyMultiplier(double multiplier) {
  for (SimDisk& disk : disks_) {
    disk.SetLatencyMultiplier(multiplier);
  }
}

void DiskArray::ClearBacklog() {
  for (SimDisk& disk : disks_) {
    disk.ClearBacklog();
  }
  channel_.ClearBacklog();
}

SimTime DiskArray::MaxBusyUntil() const {
  SimTime max = 0;
  for (const SimDisk& disk : disks_) {
    if (disk.busy_until() > max) {
      max = disk.busy_until();
    }
  }
  return max;
}

}  // namespace slice
