#include "src/sim/event_queue.h"

namespace slice {

void EventQueue::Push(SimTime when, Action action, bool background) {
  if (when < now_) {
    when = now_;
  }
  if (!background) {
    ++foreground_pending_;
  }
  heap_.push(Event{when, next_seq_++, background, std::move(action)});
}

void EventQueue::ScheduleAt(SimTime when, Action action) {
  Push(when, std::move(action), in_background_);
}

void EventQueue::ScheduleBackgroundAt(SimTime when, Action action) {
  Push(when, std::move(action), true);
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; move out via const_cast is the
  // standard idiom but UB-adjacent, so copy the small fields and move the
  // action through a local pop-then-run.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  SLICE_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  if (!ev.background) {
    SLICE_CHECK(foreground_pending_ > 0);
    --foreground_pending_;
  }
  const bool prev_background = in_background_;
  in_background_ = ev.background;
  ev.action();
  in_background_ = prev_background;
  return true;
}

void EventQueue::RunUntilIdle() {
  while (foreground_pending_ > 0 && RunOne()) {
  }
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace slice
