#include "src/sim/event_queue.h"

namespace slice {

void EventQueue::Push(SimTime when, Action action, bool background) {
  if (when < now_) {
    when = now_;
  }
  if (!background) {
    ++foreground_pending_;
  }
  heap_.push(Event{when, next_seq_++, background, std::move(action)});
}

void EventQueue::ScheduleAt(SimTime when, Action action) {
  Push(when, std::move(action), in_background_);
}

void EventQueue::ScheduleBackgroundAt(SimTime when, Action action) {
  Push(when, std::move(action), true);
}

void EventQueue::ScheduleDrainAt(SimTime when, DrainFn fn, void* sink,
                                 std::shared_ptr<const bool> guard) {
  if (when < now_) {
    when = now_;
  }
  if (!in_background_) {
    ++foreground_pending_;
  }
  Event ev;
  ev.when = when;
  ev.seq = next_seq_++;
  ev.background = in_background_;
  ev.drain_fn = fn;
  ev.drain_sink = sink;
  ev.guard = std::move(guard);
  heap_.push(std::move(ev));
}

bool EventQueue::AbsorbNextDrain(void* sink) {
  if (heap_.empty()) {
    return false;
  }
  const Event& top = heap_.top();
  if (top.drain_fn == nullptr || top.drain_sink != sink || top.when != now_) {
    return false;
  }
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  ++executed_;
  if (!ev.background) {
    SLICE_CHECK(foreground_pending_ > 0);
    --foreground_pending_;
  }
  // The caller keeps processing inside the current dispatch; anything it
  // schedules while handling this unit inherits the absorbed event's
  // background status, exactly as if the drain had fired on its own. RunOne
  // restores the pre-dispatch status afterwards.
  in_background_ = ev.background;
  return true;
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; move out via const_cast is the
  // standard idiom but UB-adjacent, so copy the small fields and move the
  // action through a local pop-then-run.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  SLICE_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  if (!ev.background) {
    SLICE_CHECK(foreground_pending_ > 0);
    --foreground_pending_;
  }
  const bool prev_background = in_background_;
  in_background_ = ev.background;
  if (dispatch_hook_ != nullptr) {
    dispatch_hook_(dispatch_hook_ctx_, /*begin=*/true);
  }
  if (ev.drain_fn != nullptr) {
    if (ev.guard == nullptr || *ev.guard) {
      ev.drain_fn(ev.drain_sink);
    }
  } else {
    ev.action();
  }
  if (dispatch_hook_ != nullptr) {
    dispatch_hook_(dispatch_hook_ctx_, /*begin=*/false);
  }
  in_background_ = prev_background;
  return true;
}

void EventQueue::RunUntilIdle() {
  while (foreground_pending_ > 0 && RunOne()) {
  }
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace slice
