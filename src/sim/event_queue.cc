#include "src/sim/event_queue.h"

namespace slice {

void EventQueue::ScheduleAt(SimTime when, Action action) {
  if (when < now_) {
    when = now_;
  }
  heap_.push(Event{when, next_seq_++, std::move(action)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; move out via const_cast is the
  // standard idiom but UB-adjacent, so copy the small fields and move the
  // action through a local pop-then-run.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  SLICE_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  ev.action();
  return true;
}

void EventQueue::RunUntilIdle() {
  while (RunOne()) {
  }
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace slice
