// Object store: the per-node storage manager beneath a Slice network storage
// node. Presents a flat space of sparse storage objects ("an ordered
// sequence of bytes with a unique identifier", paper §2.2) over a flat disk
// address space of 8KB blocks.
//
// Physical allocation seeks contiguity (FFS-style clustering): sequential
// writes to an object receive sequential physical blocks whenever possible,
// which the disk timing model rewards. NFSv3 unstable-write semantics are
// implemented with a dirty-block overlay: unstable data lives in memory until
// Commit() pushes it to "disk" (the stable image); CrashDiscardDirty() models
// a power failure, dropping uncommitted data exactly as a real server would.
#ifndef SLICE_STORAGE_OBJECT_STORE_H_
#define SLICE_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace slice {

constexpr size_t kStoreBlockSize = 8192;

using ObjectId = uint64_t;
using BlockIndex = uint64_t;   // logical block within an object
using PhysBlock = uint64_t;    // physical block within the node's disk space

struct StoreWriteResult {
  // Physical blocks whose stable image was written by this call (empty for
  // unstable writes); the caller charges disk time for them.
  std::vector<PhysBlock> blocks_written;
  uint64_t new_size = 0;
};

struct StoreReadResult {
  Bytes data;
  bool eof = false;
  // Physical blocks backing the read (for cache/disk accounting). Blocks
  // served from the dirty overlay report their physical slot too (already
  // allocated) but a caller that tracks the overlay may treat them as hits.
  std::vector<PhysBlock> blocks_read;
};

class ObjectStore {
 public:
  explicit ObjectStore(uint64_t capacity_bytes);

  // Writes data at `offset`. If `stable`, the data goes straight to the
  // stable image (and physical blocks are reported); otherwise it lands in
  // the dirty overlay awaiting Commit.
  Result<StoreWriteResult> Write(ObjectId id, uint64_t offset, ByteSpan data, bool stable);

  // Reads up to `count` bytes at `offset`, merging the dirty overlay over
  // the stable image. Short reads indicate end-of-object.
  Result<StoreReadResult> Read(ObjectId id, uint64_t offset, uint32_t count) const;

  // Allocation-free read into caller-owned scratch: `data` is resized to the
  // read length (capacity reused across calls) and the stable blocks backing
  // the read are appended to `blocks_read`. Returns eof. The storage node's
  // READ fast path uses this so a steady-state cache-hit read never touches
  // the heap; Read() above is a convenience wrapper.
  Result<bool> ReadInto(ObjectId id, uint64_t offset, uint32_t count, Bytes* data,
                        std::vector<PhysBlock>* blocks_read) const;

  // Flushes the object's dirty overlay to the stable image; returns the
  // physical blocks written so the caller can charge (clustered) disk time.
  // Committing a missing/clean object succeeds with no blocks.
  std::vector<PhysBlock> Commit(ObjectId id);
  // Commits every object (periodic syncer / clean shutdown).
  std::vector<PhysBlock> CommitAll();

  // Truncates to `size` (frees whole blocks beyond it).
  Status Truncate(ObjectId id, uint64_t size);
  // Removes the object entirely, freeing its blocks.
  Status Remove(ObjectId id);

  // Models a crash: all dirty (uncommitted) data is lost.
  void CrashDiscardDirty();

  bool Exists(ObjectId id) const { return objects_.contains(id); }
  Result<uint64_t> Size(ObjectId id) const;
  uint64_t SizeOrZero(ObjectId id) const;
  // Bytes of physical storage allocated to the object.
  uint64_t AllocatedBytes(ObjectId id) const;

  size_t object_count() const { return objects_.size(); }
  uint64_t used_blocks() const { return used_blocks_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t dirty_blocks() const;

  // The physical block that backs (id, logical block), or nullopt if
  // unallocated. Exposed for tests and the storage node's cache keying.
  std::optional<PhysBlock> PhysicalFor(ObjectId id, BlockIndex block) const;

 private:
  struct Object {
    uint64_t size = 0;                              // stable size
    uint64_t unstable_size = 0;                     // size including overlay
    std::map<BlockIndex, PhysBlock> blocks;         // stable image, sparse
    std::map<BlockIndex, Bytes> dirty;              // overlay, 8KB buffers
  };

  Result<PhysBlock> AllocBlock(PhysBlock hint);
  void FreeBlock(PhysBlock block);
  // Stable-image block data pointer (allocating if needed).
  Result<uint8_t*> StableBlockData(Object& obj, BlockIndex block, PhysBlock hint,
                                   std::vector<PhysBlock>* newly_written);

  uint64_t capacity_blocks_;
  uint64_t used_blocks_ = 0;
  PhysBlock alloc_cursor_ = 0;
  std::unordered_map<ObjectId, Object> objects_;
  // Physical block payloads. Allocated lazily; indexed by PhysBlock.
  std::unordered_map<PhysBlock, Bytes> disk_;
  std::vector<bool> allocated_;
};

}  // namespace slice

#endif  // SLICE_STORAGE_OBJECT_STORE_H_
