// LRU buffer cache over physical blocks. Used by storage nodes, small-file
// servers and the baseline server to decide which reads pay disk time. The
// small-file-server cache size is what produces the SPECsfs latency knee in
// Figure 6 ("the ensemble overflows its 1 GB cache on the small-file
// servers").
//
// The recency list is an intrusive doubly-linked list threaded through a
// flat node array by index, with a FlatMap from block to node index. Earlier
// versions kept std::list iterators in an unordered_map; a touch or
// re-insert then hinged on splice() preserving exactly the iterator stored
// in the map, and every cold insert paid two node allocations. Indices into
// a reusable array can't dangle, and a full cache recycles the victim's slot
// on every insert, so steady-state Access/Insert/Erase never touch the heap.
#ifndef SLICE_STORAGE_BLOCK_CACHE_H_
#define SLICE_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/core/pending_map.h"
#include "src/storage/object_store.h"

namespace slice {

class BlockCache {
 public:
  // Sub-block capacities used to truncate to zero blocks, which turned every
  // insert into an immediate self-eviction (cache thrash with a 100% miss
  // rate). Round up instead, and reject a zero-byte cache outright.
  explicit BlockCache(uint64_t capacity_bytes)
      : capacity_blocks_((capacity_bytes + kStoreBlockSize - 1) / kStoreBlockSize) {
    SLICE_CHECK(capacity_bytes > 0);
  }

  // Called with each block evicted by capacity pressure. Owners that keep
  // payload bytes alongside the cache (the small-file server's page pool)
  // use this to drop them. The hook fires only after the victim is fully
  // unlinked — absent from the index and the recency list — so a hook may
  // re-enter the cache (Erase, Insert, even Access) without observing or
  // corrupting a half-removed entry.
  void SetEvictionHook(std::function<void(PhysBlock)> hook) { eviction_hook_ = std::move(hook); }

  // Returns true on hit. On miss, inserts the block as most-recently used
  // (evicting the LRU block if full) and returns false.
  bool Access(PhysBlock block) {
    if (uint32_t* at = index_.Find(block)) {
      MoveToFront(*at);
      ++hits_;
      return true;
    }
    ++misses_;
    InsertFresh(block);
    return false;
  }

  // Inserts without counting a hit/miss (e.g. blocks entering via writes or
  // prefetch).
  void Insert(PhysBlock block) {
    if (uint32_t* at = index_.Find(block)) {
      MoveToFront(*at);
      return;
    }
    InsertFresh(block);
  }

  bool Contains(PhysBlock block) const { return index_.Find(block) != nullptr; }

  void Erase(PhysBlock block) {
    uint32_t* at = index_.Find(block);
    if (at == nullptr) {
      return;
    }
    const uint32_t node = *at;
    Unlink(node);
    FreeNode(node);
    index_.Erase(block);
  }

  void Clear() {
    nodes_.clear();
    head_ = tail_ = free_head_ = kNil;
    index_.Clear();
  }

  size_t size_blocks() const { return index_.size(); }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Node {
    PhysBlock block = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;  // doubles as the freelist link for free nodes
  };

  void InsertFresh(PhysBlock block) {
    uint32_t node;
    if (free_head_ != kNil) {
      node = free_head_;
      free_head_ = nodes_[node].next;
    } else {
      node = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[node].block = block;
    LinkFront(node);
    *index_.Insert(block).first = node;
    if (index_.size() > capacity_blocks_) {
      const uint32_t victim = tail_;
      const PhysBlock victim_block = nodes_[victim].block;
      Unlink(victim);
      FreeNode(victim);
      index_.Erase(victim_block);
      if (eviction_hook_) {
        eviction_hook_(victim_block);
      }
    }
  }

  void FreeNode(uint32_t node) {
    nodes_[node].next = free_head_;
    free_head_ = node;
  }

  void LinkFront(uint32_t node) {
    nodes_[node].prev = kNil;
    nodes_[node].next = head_;
    if (head_ != kNil) {
      nodes_[head_].prev = node;
    }
    head_ = node;
    if (tail_ == kNil) {
      tail_ = node;
    }
  }

  void Unlink(uint32_t node) {
    const uint32_t prev = nodes_[node].prev;
    const uint32_t next = nodes_[node].next;
    if (prev != kNil) {
      nodes_[prev].next = next;
    } else {
      head_ = next;
    }
    if (next != kNil) {
      nodes_[next].prev = prev;
    } else {
      tail_ = prev;
    }
  }

  void MoveToFront(uint32_t node) {
    if (head_ == node) {
      return;
    }
    Unlink(node);
    LinkFront(node);
  }

  uint64_t capacity_blocks_;
  std::vector<Node> nodes_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint32_t free_head_ = kNil;
  FlatU64Map<uint32_t> index_;
  std::function<void(PhysBlock)> eviction_hook_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace slice

#endif  // SLICE_STORAGE_BLOCK_CACHE_H_
