// LRU buffer cache over physical blocks. Used by storage nodes, small-file
// servers and the baseline server to decide which reads pay disk time. The
// small-file-server cache size is what produces the SPECsfs latency knee in
// Figure 6 ("the ensemble overflows its 1 GB cache on the small-file
// servers").
#ifndef SLICE_STORAGE_BLOCK_CACHE_H_
#define SLICE_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "src/common/status.h"
#include "src/storage/object_store.h"

namespace slice {

class BlockCache {
 public:
  // Sub-block capacities used to truncate to zero blocks, which turned every
  // insert into an immediate self-eviction (cache thrash with a 100% miss
  // rate). Round up instead, and reject a zero-byte cache outright.
  explicit BlockCache(uint64_t capacity_bytes)
      : capacity_blocks_((capacity_bytes + kStoreBlockSize - 1) / kStoreBlockSize) {
    SLICE_CHECK(capacity_bytes > 0);
  }

  // Called with each block evicted by capacity pressure. Owners that keep
  // payload bytes alongside the cache (the small-file server's page pool)
  // use this to drop them.
  void SetEvictionHook(std::function<void(PhysBlock)> hook) { eviction_hook_ = std::move(hook); }

  // Returns true on hit. On miss, inserts the block as most-recently used
  // (evicting the LRU block if full) and returns false.
  bool Access(PhysBlock block) {
    auto it = index_.find(block);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return true;
    }
    ++misses_;
    Insert(block);
    return false;
  }

  // Inserts without counting a hit/miss (e.g. blocks entering via writes or
  // prefetch).
  void Insert(PhysBlock block) {
    auto it = index_.find(block);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(block);
    index_[block] = lru_.begin();
    if (index_.size() > capacity_blocks_) {
      const PhysBlock victim = lru_.back();
      index_.erase(victim);
      lru_.pop_back();
      if (eviction_hook_) {
        eviction_hook_(victim);
      }
    }
  }

  bool Contains(PhysBlock block) const { return index_.contains(block); }

  void Erase(PhysBlock block) {
    auto it = index_.find(block);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
  }

  void Clear() {
    lru_.clear();
    index_.clear();
  }

  size_t size_blocks() const { return index_.size(); }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  uint64_t capacity_blocks_;
  std::list<PhysBlock> lru_;
  std::unordered_map<PhysBlock, std::list<PhysBlock>::iterator> index_;
  std::function<void(PhysBlock)> eviction_hook_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace slice

#endif  // SLICE_STORAGE_BLOCK_CACHE_H_
