// Network storage node: serves block-level access to storage objects over
// the NFS-subset wire protocol (read, write, commit, plus truncate/remove
// for the coordinator), per paper §2.2/§4.2.
//
// Requesters address data as logical offsets within storage objects; the
// node maps NFS file handles to objects, verifies the handle's capability
// tag (NASD-style), and manages physical placement itself. Timing: an
// 8-disk array behind a shared channel, an LRU block cache, 256KB sequential
// prefetch, and FFS-style write clustering.
#ifndef SLICE_STORAGE_STORAGE_NODE_H_
#define SLICE_STORAGE_STORAGE_NODE_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/pending_map.h"
#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/disk.h"
#include "src/storage/block_cache.h"
#include "src/storage/object_store.h"

namespace slice {

struct StorageNodeParams {
  uint64_t capacity_bytes = 64ull << 30;
  uint64_t cache_bytes = 256ull << 20;
  size_t num_disks = 8;
  DiskParams disk;
  double channel_mb_per_s = 75.0;
  // CPU cost of servicing one request, plus a per-byte handling cost.
  double op_cpu_us = 30.0;
  double cpu_ns_per_byte = 2.0;
  // Prefetch window. The paper's nodes prefetched 256KB (32 blocks); we use
  // 512KB because our disk model charges a full positioning delay per
  // coalesced run, which is conservative vs. a real drive's track cache.
  size_t prefetch_blocks = 64;
  uint64_t volume_secret = 0;
  bool check_capability = true;
  // Extra metadata disk I/Os charged per cache-missing block, modeling the
  // inode/indirect-block traffic of the FFS storage manager beneath each
  // node (paper §4.2). 0 disables; the SPECsfs benches calibrate this.
  double extra_meta_ios = 0.0;
};

class StorageNode : public RpcServerNode {
 public:
  StorageNode(Network& net, EventQueue& queue, NetAddr addr, StorageNodeParams params,
              uint64_t seed = 1);

  const ObjectStore& store() const { return store_; }
  ObjectStore& mutable_store() { return store_; }
  const BlockCache& cache() const { return cache_; }
  const DiskArray& disks() const { return disks_; }

  // Gray-disk fault (src/chaos): every arm in this node's array serves I/O
  // `multiplier`× slower. The node stays up and keeps heartbeating — the
  // failure detector must NOT declare it dead; requests just crawl.
  void SetDiskLatencyMultiplier(double multiplier) { disks_.SetLatencyMultiplier(multiplier); }
  uint64_t write_verifier() const { return write_verifier_; }
  uint64_t prefetches_issued() const { return prefetches_issued_; }

  // Adds disk-array and block-cache instruments on top of the base server
  // metrics (all provider-backed).
  void set_metrics(obs::Metrics* metrics) override;

 protected:
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override;
  void OnRestart() override;

 private:
  // The per-proc switch; HandleCall wraps it to charge the request's disk
  // busy-time delta (arms + channel) to the profiler ledger, covering every
  // disk path — demand I/O, prefetch, and metadata debt — from one site.
  RpcAcceptStat DispatchNfsCall(const RpcMessageView& call, XdrEncoder& reply,
                                ServiceCost& cost);
  Fattr3 MakeAttr(const FileHandle& fh) const;
  // Charges disk reads for the uncached blocks among `blocks`; returns the
  // latest completion. Updates the cache.
  SimTime ChargeReads(const std::vector<PhysBlock>& blocks);
  // Charges disk writes (clustered) for `blocks` (sorted in place).
  SimTime ChargeWrites(std::vector<PhysBlock>& blocks);
  // Submits the blocks as per-arm contiguous runs (one positioning per run,
  // FFS clustering / track-sized transfers), sorting `blocks` in place.
  // Inserts into the cache when `fill_cache`.
  SimTime SubmitCoalesced(std::vector<PhysBlock>& blocks, bool fill_cache);
  // Charges accumulated metadata I/O debt (extra_meta_ios per missed block).
  SimTime ChargeMetadataIos();
  // Records a kDisk span [start, done] against the current trace context
  // (handlers run under the request's scope); returns `done` for chaining.
  SimTime RecordDisk(const char* name, SimTime start, SimTime done);
  void MaybePrefetch(ObjectId id, uint64_t offset, uint32_t count);

  void HandleRead(const ReadArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleWrite(const WriteArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleCommit(const CommitArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleGetattr(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleSetattr(const SetattrArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleRemove(const DirOpArgs& args, XdrEncoder& reply, ServiceCost& cost);
  void HandleFsstat(XdrEncoder& reply, ServiceCost& cost);

  bool CheckHandle(const FileHandle& fh) const;

  StorageNodeParams params_;
  ObjectStore store_;
  BlockCache cache_;
  DiskArray disks_;
  Rng rng_;
  uint64_t write_verifier_;
  double meta_debt_ = 0.0;
  uint64_t prefetches_issued_ = 0;
  // Sequential-access detector: next expected offset per object. Flat map so
  // the steady-state READ path never allocates a node (DESIGN.md,
  // server-side pools).
  FlatU64Map<uint64_t> next_offset_;
  // Blocks inserted into the cache whose disk I/O has not completed yet
  // (prefetch in flight): demand reads must wait for the ready time. Entries
  // die with their block — the cache's eviction hook erases them — so the
  // table is bounded by the cache size, not by an episodic clear.
  FlatU64Map<SimTime> pending_ready_;
  // Per-request scratch (capacities reused): READ payload + backing blocks,
  // the miss list ChargeReads feeds to the disks, and the prefetch batch.
  Bytes read_data_;
  std::vector<PhysBlock> read_blocks_;
  std::vector<PhysBlock> read_misses_;
  std::vector<PhysBlock> prefetch_batch_;
};

}  // namespace slice

#endif  // SLICE_STORAGE_STORAGE_NODE_H_
