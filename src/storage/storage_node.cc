#include "src/storage/storage_node.h"

#include <algorithm>

#include "src/common/logging.h"

namespace slice {
namespace {

// Storage objects are keyed by the file's identity; every node addressing
// the same file uses the same object id ("the storage nodes accept NFS file
// handles as object identifiers, using an external hash", paper §4.2).
ObjectId ObjectIdFor(const FileHandle& fh) {
  return MixU64(fh.fileid() ^ (static_cast<uint64_t>(fh.volume()) << 48));
}

}  // namespace

StorageNode::StorageNode(Network& net, EventQueue& queue, NetAddr addr,
                         StorageNodeParams params, uint64_t seed)
    : RpcServerNode(net, queue, addr, kNfsPort),
      params_(params),
      store_(params.capacity_bytes),
      cache_(params.cache_bytes),
      disks_(params.num_disks, params.disk, params.channel_mb_per_s),
      rng_(seed ^ addr),
      write_verifier_(rng_.NextU64()) {
  // A pending-ready entry is only meaningful while its block is cached: if
  // capacity pressure evicts the block before its prefetch I/O lands, a
  // later re-fetch must charge fresh disk time, not inherit the stale ready
  // stamp. Tying the lifetime to eviction also bounds the table by the cache
  // size (this replaces an episodic size-triggered clear).
  cache_.SetEvictionHook([this](PhysBlock block) { pending_ready_.Erase(block); });
}

void StorageNode::set_metrics(obs::Metrics* metrics) {
  RpcServerNode::set_metrics(metrics);
  if (metrics == nullptr || !metrics->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics->Registry(addr());
  reg.GetCounter("storage_disk_ios")->SetProvider([this]() { return disks_.TotalIos(); });
  reg.GetCounter("storage_disk_busy_ns")->SetProvider([this]() {
    return static_cast<uint64_t>(disks_.TotalBusy());
  });
  reg.GetCounter("storage_disk_position_ns")->SetProvider([this]() {
    return static_cast<uint64_t>(disks_.TotalPosition());
  });
  reg.GetCounter("storage_disk_transfer_ns")->SetProvider([this]() {
    return static_cast<uint64_t>(disks_.TotalTransfer());
  });
  // Worst-arm backlog: the gauge the disk_backlog watchdog watches.
  reg.GetGauge("storage_disk_backlog_ns")->SetProvider([this]() -> int64_t {
    const auto backlog =
        static_cast<int64_t>(disks_.MaxBusyUntil()) - static_cast<int64_t>(now());
    return backlog > 0 ? backlog : 0;
  });
  reg.GetCounter("storage_cache_hits")->SetProvider([this]() { return cache_.hits(); });
  reg.GetCounter("storage_cache_misses")->SetProvider([this]() { return cache_.misses(); });
  reg.GetCounter("storage_prefetches")->SetProvider([this]() { return prefetches_issued_; });
}

bool StorageNode::CheckHandle(const FileHandle& fh) const {
  if (!params_.check_capability) {
    return true;
  }
  return fh.VerifyCapability(params_.volume_secret);
}

Fattr3 StorageNode::MakeAttr(const FileHandle& fh) const {
  Fattr3 attr;
  attr.type = FileType3::kReg;
  attr.fileid = fh.fileid();
  attr.fsid = fh.volume();
  const ObjectId id = ObjectIdFor(fh);
  attr.size = store_.SizeOrZero(id);
  attr.used = store_.AllocatedBytes(id);
  const uint32_t sec = static_cast<uint32_t>(now() / kNanosPerSec);
  const uint32_t nsec = static_cast<uint32_t>(now() % kNanosPerSec);
  attr.atime = attr.mtime = attr.ctime = NfsTime{sec, nsec};
  return attr;
}

SimTime StorageNode::SubmitCoalesced(std::vector<PhysBlock>& blocks, bool fill_cache) {
  obs::Profiler::Scope prof(profiler(), obs::ProfScope::kStorageDisk);
  std::sort(blocks.begin(), blocks.end());
  SimTime latest = 0;
  const size_t arms = disks_.num_disks();
  size_t runs = 0;
  // Group per arm, then merge runs of consecutive arm-local positions so one
  // positioning covers a whole track-sized transfer.
  for (size_t arm = 0; arm < arms; ++arm) {
    uint64_t run_start = 0;
    uint64_t run_len = 0;
    uint64_t prev = 0;
    auto flush_run = [&]() {
      if (run_len == 0) {
        return;
      }
      ++runs;
      latest = std::max(latest, disks_.SubmitIo(now(), arm, run_start * kStoreBlockSize,
                                                run_len * kStoreBlockSize));
    };
    for (PhysBlock block : blocks) {
      if (block % arms != arm) {
        continue;
      }
      const uint64_t arm_pos = block / arms;
      if (run_len > 0 && arm_pos == prev + 1) {
        ++run_len;
      } else {
        flush_run();
        run_start = arm_pos;
        run_len = 1;
      }
      prev = arm_pos;
      if (fill_cache) {
        cache_.Insert(block);
      }
    }
    flush_run();
  }
  // Metadata I/O (inode/indirect blocks) amortizes over clustered transfers:
  // charge per run, so random 8KB misses pay full freight while sequential
  // log appends and track-sized flushes stay cheap.
  for (size_t r = 0; r < runs; ++r) {
    latest = std::max(latest, ChargeMetadataIos());
  }
  return latest;
}

SimTime StorageNode::RecordDisk(const char* name, SimTime start, SimTime done) {
  if (tracer() != nullptr && done > start) {
    const obs::TraceContext ctx = tracer()->current();
    if (ctx.valid()) {
      tracer()->RecordSpan(addr(), ctx, obs::SpanCat::kDisk, name, start, done);
    }
  }
  return done;
}

SimTime StorageNode::ChargeReads(const std::vector<PhysBlock>& blocks) {
  obs::Profiler::Scope prof(profiler(), obs::ProfScope::kStorageCache);
  read_misses_.clear();
  SimTime latest = 0;
  for (PhysBlock block : blocks) {
    if (cache_.Access(block)) {
      // A hit on an in-flight prefetch still waits for the disk.
      if (const SimTime* ready = pending_ready_.Find(block)) {
        if (*ready > now()) {
          latest = std::max(latest, *ready);
        } else {
          pending_ready_.Erase(block);
        }
      }
    } else {
      read_misses_.push_back(block);
    }
  }
  return RecordDisk("disk_read", now(),
                    std::max(latest, SubmitCoalesced(read_misses_, /*fill_cache=*/true)));
}

SimTime StorageNode::ChargeMetadataIos() {
  meta_debt_ += params_.extra_meta_ios;
  SimTime latest = 0;
  while (meta_debt_ >= 1.0) {
    meta_debt_ -= 1.0;
    const size_t disk = rng_.NextBelow(disks_.num_disks());
    const uint64_t pos = rng_.NextBelow(store_.capacity_blocks()) * kStoreBlockSize;
    latest = std::max(latest, disks_.SubmitIo(now(), disk, pos, kStoreBlockSize));
  }
  return latest;
}

SimTime StorageNode::ChargeWrites(std::vector<PhysBlock>& blocks) {
  return RecordDisk("disk_write", now(), SubmitCoalesced(blocks, /*fill_cache=*/true));
}

void StorageNode::MaybePrefetch(ObjectId id, uint64_t offset, uint32_t count) {
  // Striped files reach each node with large strides between this node's
  // shares; treat bounded forward progress as sequential so the prefetcher
  // stays ahead of a striped sequential reader.
  const uint64_t* expected = next_offset_.Find(id);
  const bool forward =
      expected != nullptr && offset >= *expected && offset - *expected <= (4u << 20);
  *next_offset_.Insert(id).first = offset + count;
  if (!forward && offset != 0) {
    return;
  }
  // Fetch up to prefetch_blocks of existing stable blocks past the access;
  // they go to the cache on the disks' own time, off the reply path. Striped
  // files leave logical holes on each node, so skip gaps rather than stop —
  // the node's share of the file is physically contiguous regardless.
  const BlockIndex first = (offset + count + kStoreBlockSize - 1) / kStoreBlockSize;
  size_t found = 0;
  const size_t horizon = params_.prefetch_blocks * 16;
  prefetch_batch_.clear();
  for (size_t i = 0; i < horizon && found < params_.prefetch_blocks; ++i) {
    std::optional<PhysBlock> phys = store_.PhysicalFor(id, first + i);
    if (!phys.has_value()) {
      continue;
    }
    ++found;
    if (cache_.Contains(*phys)) {
      continue;
    }
    prefetch_batch_.push_back(*phys);
  }
  // Hysteresis: refill in track-sized batches. Dribbling one block per
  // demand read would cost a full positioning delay per 8KB; waiting until
  // half the window has drained keeps per-arm runs long (FFS clustering).
  if (prefetch_batch_.size() < params_.prefetch_blocks / 2) {
    return;
  }
  prefetches_issued_ += prefetch_batch_.size();
  const SimTime ready = SubmitCoalesced(prefetch_batch_, /*fill_cache=*/true);
  // Stale entries cannot accumulate: the cache's eviction hook erases a
  // block's entry when the block itself is evicted.
  for (PhysBlock block : prefetch_batch_) {
    *pending_ready_.Insert(block).first = ready;
  }
}

void StorageNode::HandleRead(const ReadArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  ReadRes res;
  if (!CheckHandle(args.file)) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  const ObjectId id = ObjectIdFor(args.file);
  read_blocks_.clear();
  Result<bool> eof = store_.ReadInto(id, args.offset, args.count, &read_data_, &read_blocks_);
  if (!eof.ok()) {
    res.status = Nfsstat3::kErrIo;
    res.Encode(reply);
    return;
  }
  cost.MergeCompletion(ChargeReads(read_blocks_));
  MaybePrefetch(id, args.offset, args.count);
  cost.AddCpu(FromMicros(params_.op_cpu_us) +
              static_cast<SimTime>(static_cast<double>(read_data_.size()) *
                                   params_.cpu_ns_per_byte));
  res.file_attributes = MakeAttr(args.file);
  res.count = static_cast<uint32_t>(read_data_.size());
  res.eof = *eof;
  // Splice the scratch payload straight into the reply; res.data stays empty
  // (no per-request Bytes materialization on the READ fast path).
  res.Encode(reply, ByteSpan(read_data_));
}

void StorageNode::HandleWrite(const WriteArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  WriteRes res;
  if (!CheckHandle(args.file)) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  const ObjectId id = ObjectIdFor(args.file);
  const bool stable = args.stable != StableHow::kUnstable;
  Result<StoreWriteResult> write = store_.Write(id, args.offset, args.data, stable);
  if (!write.ok()) {
    res.status = write.status().code() == StatusCode::kResourceExhausted ? Nfsstat3::kErrNospc
                                                                         : Nfsstat3::kErrIo;
    res.Encode(reply);
    return;
  }
  if (stable) {
    cost.MergeCompletion(ChargeWrites(write->blocks_written));
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us) +
              static_cast<SimTime>(static_cast<double>(args.data.size()) *
                                   params_.cpu_ns_per_byte));
  res.count = static_cast<uint32_t>(args.data.size());
  res.committed = stable ? StableHow::kFileSync : StableHow::kUnstable;
  res.verf = write_verifier_;
  res.wcc.after = MakeAttr(args.file);
  res.Encode(reply);
}

void StorageNode::HandleCommit(const CommitArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  CommitRes res;
  if (!CheckHandle(args.file)) {
    res.status = Nfsstat3::kErrBadhandle;
    res.Encode(reply);
    return;
  }
  std::vector<PhysBlock> written = store_.Commit(ObjectIdFor(args.file));
  cost.MergeCompletion(ChargeWrites(written));
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  res.verf = write_verifier_;
  res.wcc.after = MakeAttr(args.file);
  res.Encode(reply);
}

void StorageNode::HandleGetattr(const GetattrArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  GetattrRes res;
  if (!CheckHandle(args.object)) {
    res.status = Nfsstat3::kErrBadhandle;
  } else {
    res.attributes = MakeAttr(args.object);
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us / 2));
  res.Encode(reply);
}

void StorageNode::HandleSetattr(const SetattrArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  SetattrRes res;
  if (!CheckHandle(args.object)) {
    res.status = Nfsstat3::kErrBadhandle;
  } else if (args.new_attributes.size.has_value()) {
    const Status st = store_.Truncate(ObjectIdFor(args.object), *args.new_attributes.size);
    if (!st.ok()) {
      res.status = Nfsstat3::kErrIo;
    }
    res.wcc.after = MakeAttr(args.object);
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  res.Encode(reply);
}

void StorageNode::HandleRemove(const DirOpArgs& args, XdrEncoder& reply, ServiceCost& cost) {
  // Convention: REMOVE with an empty name removes the storage object named
  // by the handle (coordinator-driven object deletion).
  RemoveRes res;
  if (!CheckHandle(args.dir)) {
    res.status = Nfsstat3::kErrBadhandle;
  } else if (!args.name.empty()) {
    res.status = Nfsstat3::kErrInval;
  } else {
    const Status st = store_.Remove(ObjectIdFor(args.dir));
    if (!st.ok()) {
      res.status = Nfsstat3::kErrNoent;
    }
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  res.Encode(reply);
}

void StorageNode::HandleFsstat(XdrEncoder& reply, ServiceCost& cost) {
  FsstatRes res;
  res.tbytes = store_.capacity_blocks() * kStoreBlockSize;
  res.fbytes = (store_.capacity_blocks() - store_.used_blocks()) * kStoreBlockSize;
  res.abytes = res.fbytes;
  res.tfiles = 1u << 20;
  res.ffiles = res.tfiles - store_.object_count();
  res.afiles = res.ffiles;
  cost.AddCpu(FromMicros(params_.op_cpu_us / 2));
  res.Encode(reply);
}

RpcAcceptStat StorageNode::HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                      ServiceCost& cost) {
  const SimTime disk_before =
      disks_.TotalBusy() + static_cast<SimTime>(disks_.channel().total_busy_time());
  const RpcAcceptStat stat = DispatchNfsCall(call, reply, cost);
  const SimTime disk_after =
      disks_.TotalBusy() + static_cast<SimTime>(disks_.channel().total_busy_time());
  obs::ChargeSim(prof_ledger(), obs::LedgerCat::kDisk, disk_after - disk_before);
  return stat;
}

RpcAcceptStat StorageNode::DispatchNfsCall(const RpcMessageView& call, XdrEncoder& reply,
                                           ServiceCost& cost) {
  if (call.prog != kNfsProgram || call.vers != kNfsVersion) {
    return RpcAcceptStat::kProgUnavail;
  }
  XdrDecoder dec(call.body);
  switch (static_cast<NfsProc>(call.proc)) {
    case NfsProc::kNull:
      return RpcAcceptStat::kSuccess;
    case NfsProc::kRead: {
      Result<ReadArgs> args = ReadArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleRead(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kWrite: {
      Result<WriteArgs> args = WriteArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleWrite(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kCommit: {
      Result<CommitArgs> args = CommitArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleCommit(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kGetattr: {
      Result<GetattrArgs> args = GetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleGetattr(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kSetattr: {
      Result<SetattrArgs> args = SetattrArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleSetattr(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kRemove: {
      Result<DirOpArgs> args = DirOpArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      HandleRemove(*args, reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    case NfsProc::kFsstat: {
      HandleFsstat(reply, cost);
      return RpcAcceptStat::kSuccess;
    }
    default:
      return RpcAcceptStat::kProcUnavail;
  }
}

void StorageNode::OnRestart() {
  // Unstable data did not survive the crash; a new verifier tells clients to
  // re-send uncommitted writes (NFSv3 commit semantics).
  store_.CrashDiscardDirty();
  cache_.Clear();
  next_offset_.Clear();
  pending_ready_.Clear();
  // Queued disk I/O and accrued metadata debt died with the node: without
  // these resets a restarted node kept servicing its pre-crash arm backlog
  // (phantom wait time for post-restart requests) and carried fractional
  // metadata debt across the crash.
  disks_.ClearBacklog();
  meta_debt_ = 0.0;
  write_verifier_ = rng_.NextU64();
  SLICE_ILOG << "storage node " << AddrToString(addr()) << " restarted, new verifier";
  // Committed objects survive on disk; clients learn from the fresh
  // verifier that unstable writes must be re-sent.
  obs::LogEvent(eventlog(), addr(), queue().now(), obs::EventSev::kInfo,
                obs::EventCat::kFailover, obs::EventCode::kNodeRecover, /*trace_id=*/0,
                "verifier_reset", {{"objects", static_cast<int64_t>(store_.object_count())}});
}

}  // namespace slice
