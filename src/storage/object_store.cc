#include "src/storage/object_store.h"

#include <algorithm>
#include <cstring>

namespace slice {

ObjectStore::ObjectStore(uint64_t capacity_bytes)
    : capacity_blocks_(capacity_bytes / kStoreBlockSize),
      allocated_(capacity_blocks_, false) {}

Result<PhysBlock> ObjectStore::AllocBlock(PhysBlock hint) {
  if (used_blocks_ >= capacity_blocks_) {
    return Status(StatusCode::kResourceExhausted, "store: out of blocks");
  }
  // Try the hint (contiguity), then scan forward from the cursor.
  if (hint < capacity_blocks_ && !allocated_[hint]) {
    allocated_[hint] = true;
    ++used_blocks_;
    alloc_cursor_ = hint + 1;
    return hint;
  }
  for (uint64_t i = 0; i < capacity_blocks_; ++i) {
    const PhysBlock candidate = (alloc_cursor_ + i) % capacity_blocks_;
    if (!allocated_[candidate]) {
      allocated_[candidate] = true;
      ++used_blocks_;
      alloc_cursor_ = candidate + 1;
      return candidate;
    }
  }
  return Status(StatusCode::kResourceExhausted, "store: out of blocks");
}

void ObjectStore::FreeBlock(PhysBlock block) {
  SLICE_CHECK(block < capacity_blocks_ && allocated_[block]);
  allocated_[block] = false;
  disk_.erase(block);
  --used_blocks_;
}

Result<uint8_t*> ObjectStore::StableBlockData(Object& obj, BlockIndex block, PhysBlock hint,
                                              std::vector<PhysBlock>* newly_written) {
  auto it = obj.blocks.find(block);
  PhysBlock phys;
  if (it == obj.blocks.end()) {
    SLICE_ASSIGN_OR_RETURN(phys, AllocBlock(hint));
    obj.blocks[block] = phys;
  } else {
    phys = it->second;
  }
  if (newly_written != nullptr) {
    newly_written->push_back(phys);
  }
  Bytes& payload = disk_[phys];
  if (payload.size() != kStoreBlockSize) {
    payload.assign(kStoreBlockSize, 0);
  }
  return payload.data();
}

Result<StoreWriteResult> ObjectStore::Write(ObjectId id, uint64_t offset, ByteSpan data,
                                            bool stable) {
  Object& obj = objects_[id];
  StoreWriteResult result;

  size_t consumed = 0;
  while (consumed < data.size()) {
    const uint64_t abs = offset + consumed;
    const BlockIndex block = abs / kStoreBlockSize;
    const size_t within = abs % kStoreBlockSize;
    const size_t take = std::min(data.size() - consumed, kStoreBlockSize - within);

    if (stable) {
      // Contiguity hint: one past the previous logical block's physical slot.
      PhysBlock hint = alloc_cursor_;
      if (auto prev = obj.blocks.find(block == 0 ? 0 : block - 1);
          block > 0 && prev != obj.blocks.end()) {
        hint = prev->second + 1;
      }
      SLICE_ASSIGN_OR_RETURN(uint8_t * dst,
                             StableBlockData(obj, block, hint, &result.blocks_written));
      std::memcpy(dst + within, data.data() + consumed, take);
      // If a dirty overlay exists for this block, the stable write supersedes
      // the overlapped range; fold the stable bytes into the overlay so reads
      // stay coherent.
      if (auto dirty_it = obj.dirty.find(block); dirty_it != obj.dirty.end()) {
        std::memcpy(dirty_it->second.data() + within, data.data() + consumed, take);
      }
    } else {
      Bytes& overlay = obj.dirty[block];
      if (overlay.size() != kStoreBlockSize) {
        overlay.assign(kStoreBlockSize, 0);
        // Seed the overlay with the stable image so partial dirty writes do
        // not clobber surrounding stable bytes at commit time.
        if (auto sit = obj.blocks.find(block); sit != obj.blocks.end()) {
          const auto disk_it = disk_.find(sit->second);
          if (disk_it != disk_.end()) {
            overlay = disk_it->second;
          }
        }
      }
      std::memcpy(overlay.data() + within, data.data() + consumed, take);
    }
    consumed += take;
  }

  const uint64_t end = offset + data.size();
  if (stable) {
    obj.size = std::max(obj.size, end);
  }
  obj.unstable_size = std::max({obj.unstable_size, obj.size, end});
  result.new_size = obj.unstable_size;
  return result;
}

Result<bool> ObjectStore::ReadInto(ObjectId id, uint64_t offset, uint32_t count, Bytes* data,
                                   std::vector<PhysBlock>* blocks_read) const {
  data->clear();
  const auto obj_it = objects_.find(id);
  if (obj_it == objects_.end()) {
    return true;
  }
  const Object& obj = obj_it->second;
  const uint64_t size = std::max(obj.size, obj.unstable_size);
  if (offset >= size) {
    return true;
  }
  const uint64_t n = std::min<uint64_t>(count, size - offset);
  data->resize(n, 0);

  uint64_t produced = 0;
  while (produced < n) {
    const uint64_t abs = offset + produced;
    const BlockIndex block = abs / kStoreBlockSize;
    const size_t within = abs % kStoreBlockSize;
    const size_t take = std::min<uint64_t>(n - produced, kStoreBlockSize - within);

    if (auto dirty_it = obj.dirty.find(block); dirty_it != obj.dirty.end()) {
      std::memcpy(data->data() + produced, dirty_it->second.data() + within, take);
    } else if (auto sit = obj.blocks.find(block); sit != obj.blocks.end()) {
      blocks_read->push_back(sit->second);
      const auto disk_it = disk_.find(sit->second);
      if (disk_it != disk_.end()) {
        std::memcpy(data->data() + produced, disk_it->second.data() + within, take);
      }
    }
    // else: hole — zeros already there.
    produced += take;
  }
  return offset + n >= size;
}

Result<StoreReadResult> ObjectStore::Read(ObjectId id, uint64_t offset, uint32_t count) const {
  StoreReadResult result;
  SLICE_ASSIGN_OR_RETURN(result.eof,
                         ReadInto(id, offset, count, &result.data, &result.blocks_read));
  return result;
}

std::vector<PhysBlock> ObjectStore::Commit(ObjectId id) {
  std::vector<PhysBlock> written;
  auto obj_it = objects_.find(id);
  if (obj_it == objects_.end()) {
    return written;
  }
  Object& obj = obj_it->second;
  for (auto& [block, payload] : obj.dirty) {
    PhysBlock hint = alloc_cursor_;
    if (auto prev = obj.blocks.find(block == 0 ? 0 : block - 1);
        block > 0 && prev != obj.blocks.end()) {
      hint = prev->second + 1;
    }
    Result<uint8_t*> dst = StableBlockData(obj, block, hint, &written);
    if (!dst.ok()) {
      break;  // out of space mid-commit; remaining blocks stay dirty
    }
    std::memcpy(*dst, payload.data(), kStoreBlockSize);
  }
  obj.dirty.clear();
  obj.size = std::max(obj.size, obj.unstable_size);
  return written;
}

std::vector<PhysBlock> ObjectStore::CommitAll() {
  std::vector<PhysBlock> written;
  for (auto& [id, obj] : objects_) {
    (void)obj;
    std::vector<PhysBlock> w = Commit(id);
    written.insert(written.end(), w.begin(), w.end());
  }
  return written;
}

Status ObjectStore::Truncate(ObjectId id, uint64_t size) {
  auto obj_it = objects_.find(id);
  if (obj_it == objects_.end()) {
    if (size == 0) {
      return OkStatus();
    }
    objects_[id].size = size;
    objects_[id].unstable_size = size;
    return OkStatus();
  }
  Object& obj = obj_it->second;
  const BlockIndex keep = (size + kStoreBlockSize - 1) / kStoreBlockSize;
  for (auto it = obj.blocks.begin(); it != obj.blocks.end();) {
    if (it->first >= keep) {
      FreeBlock(it->second);
      it = obj.blocks.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = obj.dirty.begin(); it != obj.dirty.end();) {
    if (it->first >= keep) {
      it = obj.dirty.erase(it);
    } else {
      ++it;
    }
  }
  // Zero the tail of the boundary block so a later size extension exposes
  // zeros, not resurrected bytes (POSIX truncate semantics).
  const size_t tail = size % kStoreBlockSize;
  if (tail != 0 && size < std::max(obj.size, obj.unstable_size)) {
    const BlockIndex boundary = size / kStoreBlockSize;
    if (auto bit = obj.blocks.find(boundary); bit != obj.blocks.end()) {
      auto disk_it = disk_.find(bit->second);
      if (disk_it != disk_.end()) {
        std::fill(disk_it->second.begin() + static_cast<ptrdiff_t>(tail),
                  disk_it->second.end(), 0);
      }
    }
    if (auto dit = obj.dirty.find(boundary); dit != obj.dirty.end()) {
      std::fill(dit->second.begin() + static_cast<ptrdiff_t>(tail), dit->second.end(), 0);
    }
  }
  // setattr(size) is durable metadata: both shrink and extension survive a
  // crash (matching the implicit-creation path above).
  obj.size = size;
  obj.unstable_size = size;
  return OkStatus();
}

Status ObjectStore::Remove(ObjectId id) {
  auto obj_it = objects_.find(id);
  if (obj_it == objects_.end()) {
    return Status(StatusCode::kNotFound, "store: no such object");
  }
  for (const auto& [block, phys] : obj_it->second.blocks) {
    (void)block;
    FreeBlock(phys);
  }
  objects_.erase(obj_it);
  return OkStatus();
}

void ObjectStore::CrashDiscardDirty() {
  for (auto& [id, obj] : objects_) {
    (void)id;
    obj.dirty.clear();
    obj.unstable_size = obj.size;
  }
}

Result<uint64_t> ObjectStore::Size(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "store: no such object");
  }
  return std::max(it->second.size, it->second.unstable_size);
}

uint64_t ObjectStore::SizeOrZero(ObjectId id) const {
  const auto it = objects_.find(id);
  return it == objects_.end() ? 0 : std::max(it->second.size, it->second.unstable_size);
}

uint64_t ObjectStore::AllocatedBytes(ObjectId id) const {
  const auto it = objects_.find(id);
  return it == objects_.end() ? 0 : it->second.blocks.size() * kStoreBlockSize;
}

uint64_t ObjectStore::dirty_blocks() const {
  uint64_t n = 0;
  for (const auto& [id, obj] : objects_) {
    (void)id;
    n += obj.dirty.size();
  }
  return n;
}

std::optional<PhysBlock> ObjectStore::PhysicalFor(ObjectId id, BlockIndex block) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return std::nullopt;
  }
  const auto bit = it->second.blocks.find(block);
  if (bit == it->second.blocks.end()) {
    return std::nullopt;
  }
  return bit->second;
}

}  // namespace slice
