// Path-based convenience facade over the NFS client: resolves slash paths
// against the Slice volume, with mkdir -p, whole-file read/write, and
// recursive listing. Used by the examples and workload generators.
#ifndef SLICE_SLICE_VOLUME_CLIENT_H_
#define SLICE_SLICE_VOLUME_CLIENT_H_

#include <string>
#include <vector>

#include "src/nfs/nfs_client.h"

namespace slice {

class VolumeClient {
 public:
  // `root` is the volume root file handle (Ensemble::root()).
  VolumeClient(Host& host, EventQueue& queue, Endpoint server, FileHandle root)
      : client_(host, queue, server), root_(root) {}

  SyncNfsClient& nfs() { return client_; }
  const FileHandle& root() const { return root_; }

  // Resolves an absolute path ("/a/b/c") to a handle.
  Result<FileHandle> Resolve(const std::string& path);

  // mkdir -p: creates intermediate directories as needed.
  Result<FileHandle> MkdirAll(const std::string& path);

  // Creates (or opens) the file at `path`, creating parents, and writes the
  // whole content with the given stability, then commits.
  Status WriteFile(const std::string& path, ByteSpan content,
                   StableHow stable = StableHow::kUnstable, uint32_t io_size = 32768);

  // Reads the whole file at `path`.
  Result<Bytes> ReadFile(const std::string& path, uint32_t io_size = 32768);

  Status RemoveFile(const std::string& path);
  Status RemoveDir(const std::string& path);

  // Names of entries in the directory at `path`.
  Result<std::vector<std::string>> List(const std::string& path);

  Result<Fattr3> Stat(const std::string& path);

 private:
  static std::vector<std::string> SplitPath(const std::string& path);
  Result<std::pair<FileHandle, std::string>> ResolveParent(const std::string& path);

  SyncNfsClient client_;
  FileHandle root_;
};

}  // namespace slice

#endif  // SLICE_SLICE_VOLUME_CLIENT_H_
