// Calibrated timing constants for reproducing the paper's evaluation
// testbed (§5): Dell 4400 storage nodes with eight Cheetah drives behind one
// SCSI channel, 450 MHz PC file managers and clients, switched Gigabit
// Ethernet with jumbo frames.
//
// These are *shape-preserving* parameters: we match where bottlenecks sit
// (disk arms, client CPU, per-node channel), not exact silicon.
#ifndef SLICE_SLICE_CALIBRATION_H_
#define SLICE_SLICE_CALIBRATION_H_

#include "src/sim/disk.h"

namespace slice {

struct Calibration {
  // Network: Gigabit Ethernet, 9KB jumbo frames, one switch hop.
  double link_gbit_per_s = 1.0;
  double switch_latency_us = 30.0;

  // Cheetah ST318404LC-like disks; the paper notes achievable per-node disk
  // bandwidth is capped near 75 MB/s by the single Ultra-2 SCSI channel.
  DiskParams disk{.avg_position_ms = 5.0,
                  .media_mb_per_s = 33.0,
                  .sequential_position_ms = 0.15};
  size_t disks_per_node = 8;
  // The paper's nodes source ~55 MB/s: the Dell 4400's single internal SCSI
  // channel ran in Ultra-2 mode under FreeBSD 4.0 (§5).
  double channel_mb_per_s = 55.0;

  // Storage node: 256MB buffer cache, 256KB sequential prefetch.
  double storage_cache_mb = 256.0;
  double storage_op_cpu_us = 30.0;
  double storage_cpu_ns_per_byte = 2.0;

  // Directory server: ~150us/op saturates near the paper's 6000 ops/s once
  // logging overhead is added.
  double dir_op_cpu_us = 150.0;
  double dir_peer_cpu_us = 60.0;
  double dir_peer_rtt_us = 90.0;

  // Small-file server: 512MB cache each (x2 servers = the 1GB ensemble cache
  // whose overflow produces the Fig 6 latency jump).
  double sfs_cache_mb = 512.0;
  double sfs_op_cpu_us = 90.0;
  double sfs_cpu_ns_per_byte = 4.0;

  // Client-resident µproxy: ~10us/packet (6.1% of a 500MHz CPU at 6250
  // packets/s, Table 3).
  double uproxy_cpu_us = 10.0;

  // Client NFS stack costs: the FreeBSD write path saturates one client near
  // 40 MB/s; the zero-copy read path is cheaper but bounded by a prefetch
  // depth of 4 x 32KB blocks.
  double client_write_ns_per_byte = 24.0;
  double client_read_ns_per_byte = 14.0;
  int client_read_ahead_blocks = 4;
  uint32_t nfs_block_size = 32768;
};

}  // namespace slice

#endif  // SLICE_SLICE_CALIBRATION_H_
