#include "src/slice/volume_client.h"

#include <algorithm>

namespace slice {
namespace {

Status FromNfs(Nfsstat3 status, const std::string& what) {
  if (status == Nfsstat3::kOk) {
    return OkStatus();
  }
  return Status(StatusCode::kInternal,
                what + ": nfsstat=" +
                    std::to_string(static_cast<uint32_t>(status)));
}

}  // namespace

std::vector<std::string> VolumeClient::SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        parts.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    parts.push_back(std::move(current));
  }
  return parts;
}

Result<FileHandle> VolumeClient::Resolve(const std::string& path) {
  FileHandle fh = root_;
  for (const std::string& part : SplitPath(path)) {
    SLICE_ASSIGN_OR_RETURN(LookupRes res, client_.Lookup(fh, part));
    if (res.status != Nfsstat3::kOk) {
      return Status(StatusCode::kNotFound, "resolve: " + path);
    }
    fh = res.object;
  }
  return fh;
}

Result<std::pair<FileHandle, std::string>> VolumeClient::ResolveParent(
    const std::string& path) {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return Status(StatusCode::kInvalidArgument, "path names the root");
  }
  const std::string leaf = parts.back();
  parts.pop_back();
  FileHandle fh = root_;
  for (const std::string& part : parts) {
    SLICE_ASSIGN_OR_RETURN(LookupRes res, client_.Lookup(fh, part));
    if (res.status != Nfsstat3::kOk) {
      return Status(StatusCode::kNotFound, "resolve parent: " + path);
    }
    fh = res.object;
  }
  return std::make_pair(fh, leaf);
}

Result<FileHandle> VolumeClient::MkdirAll(const std::string& path) {
  FileHandle fh = root_;
  for (const std::string& part : SplitPath(path)) {
    SLICE_ASSIGN_OR_RETURN(LookupRes found, client_.Lookup(fh, part));
    if (found.status == Nfsstat3::kOk) {
      fh = found.object;
      continue;
    }
    SLICE_ASSIGN_OR_RETURN(CreateRes made, client_.Mkdir(fh, part));
    if (made.status != Nfsstat3::kOk || !made.object.has_value()) {
      return FromNfs(made.status, "mkdir");
    }
    fh = *made.object;
  }
  return fh;
}

Status VolumeClient::WriteFile(const std::string& path, ByteSpan content, StableHow stable,
                               uint32_t io_size) {
  SLICE_ASSIGN_OR_RETURN(auto parent_leaf, ResolveParent(path));
  auto& [parent, leaf] = parent_leaf;
  SLICE_ASSIGN_OR_RETURN(CreateRes created, client_.Create(parent, leaf));
  if (created.status != Nfsstat3::kOk || !created.object.has_value()) {
    return FromNfs(created.status, "create " + path);
  }
  const FileHandle fh = *created.object;
  for (size_t off = 0; off < content.size(); off += io_size) {
    const size_t n = std::min<size_t>(io_size, content.size() - off);
    SLICE_ASSIGN_OR_RETURN(WriteRes written,
                           client_.Write(fh, off, content.subspan(off, n), stable));
    if (written.status != Nfsstat3::kOk) {
      return FromNfs(written.status, "write " + path);
    }
  }
  if (stable == StableHow::kUnstable && !content.empty()) {
    SLICE_ASSIGN_OR_RETURN(CommitRes committed, client_.Commit(fh));
    return FromNfs(committed.status, "commit " + path);
  }
  return OkStatus();
}

Result<Bytes> VolumeClient::ReadFile(const std::string& path, uint32_t io_size) {
  SLICE_ASSIGN_OR_RETURN(FileHandle fh, Resolve(path));
  SLICE_ASSIGN_OR_RETURN(Fattr3 attr, client_.Getattr(fh));
  Bytes out;
  out.reserve(attr.size);
  uint64_t off = 0;
  while (off < attr.size) {
    SLICE_ASSIGN_OR_RETURN(ReadRes res, client_.Read(fh, off, io_size));
    if (res.status != Nfsstat3::kOk) {
      return FromNfs(res.status, "read " + path);
    }
    out.insert(out.end(), res.data.begin(), res.data.end());
    if (res.data.empty()) {
      break;  // hole/short read safety
    }
    off += res.data.size();
    if (res.eof && off >= attr.size) {
      break;
    }
  }
  return out;
}

Status VolumeClient::RemoveFile(const std::string& path) {
  SLICE_ASSIGN_OR_RETURN(auto parent_leaf, ResolveParent(path));
  auto& [parent, leaf] = parent_leaf;
  SLICE_ASSIGN_OR_RETURN(RemoveRes res, client_.Remove(parent, leaf));
  return FromNfs(res.status, "remove " + path);
}

Status VolumeClient::RemoveDir(const std::string& path) {
  SLICE_ASSIGN_OR_RETURN(auto parent_leaf, ResolveParent(path));
  auto& [parent, leaf] = parent_leaf;
  SLICE_ASSIGN_OR_RETURN(RemoveRes res, client_.Rmdir(parent, leaf));
  return FromNfs(res.status, "rmdir " + path);
}

Result<std::vector<std::string>> VolumeClient::List(const std::string& path) {
  SLICE_ASSIGN_OR_RETURN(FileHandle fh, Resolve(path));
  SLICE_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, client_.ReadWholeDir(fh));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const DirEntry& entry : entries) {
    names.push_back(entry.name);
  }
  return names;
}

Result<Fattr3> VolumeClient::Stat(const std::string& path) {
  SLICE_ASSIGN_OR_RETURN(FileHandle fh, Resolve(path));
  return client_.Getattr(fh);
}

}  // namespace slice
