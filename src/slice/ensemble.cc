#include "src/slice/ensemble.h"

#include <algorithm>

#include "src/common/hash.h"

namespace slice {
namespace {

constexpr NetAddr kVirtualAddr = 0x0a000064;   // 10.0.0.100
constexpr NetAddr kDirBase = 0x0a000100;       // 10.0.1.x
constexpr NetAddr kSfsBase = 0x0a000200;       // 10.0.2.x
constexpr NetAddr kStorageBase = 0x0a000300;   // 10.0.3.x
constexpr NetAddr kCoordBase = 0x0a000400;     // 10.0.4.x
constexpr NetAddr kMgmtAddr = 0x0a000501;      // 10.0.5.1 (ensemble manager)
constexpr NetAddr kClientBase = 0x0a000900;    // 10.0.9.x

FileHandle BackingObject(uint8_t kind, uint32_t index, uint32_t volume, uint64_t secret) {
  return FileHandle::Make(volume, (static_cast<uint64_t>(kind) << 48) | index, 1,
                          FileType3::kReg, 1, secret);
}

// EventQueue dispatch hook (plain fn-pointer — the sim layer cannot depend
// on obs): brackets every handler dispatch in the sim.dispatch scope so
// event-loop self-time shows up as that scope's exclusive time.
void ProfilerDispatchHook(void* ctx, bool begin) {
  auto* profiler = static_cast<obs::Profiler*>(ctx);
  if (begin) {
    profiler->BeginScope(obs::ProfScope::kSimDispatch);
  } else {
    profiler->EndScope();
  }
}

}  // namespace

Ensemble::Ensemble(EventQueue& queue, EnsembleConfig config)
    : queue_(queue), config_(std::move(config)) {
  SLICE_CHECK(config_.num_dir_servers >= 1);
  SLICE_CHECK(config_.num_storage_nodes >= 1);
  SLICE_CHECK(config_.num_clients >= 1);

  virtual_server_ = Endpoint{kVirtualAddr, kNfsPort};

  if (config_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(config_.trace);
  }
  if (config_.eventlog.enabled) {
    eventlog_ = std::make_unique<obs::EventLog>(config_.eventlog);
  }
  if (config_.profiler.enabled) {
    profiler_ = std::make_unique<obs::Profiler>(config_.profiler);
    queue_.SetDispatchHook(&ProfilerDispatchHook, profiler_.get());
  }
  if (config_.metrics.enabled) {
    metrics_ = std::make_unique<obs::Metrics>(config_.metrics);
    if (config_.num_tenants > 0) {
      // Before any component registers: servers and µproxies size their
      // tenant-indexed state off num_tenants() in set_metrics.
      metrics_->ConfigureTenants(config_.num_tenants, config_.slo.latency_threshold);
    }
    scraper_ = std::make_unique<obs::Scraper>(queue_, *metrics_);
    for (obs::WatchdogRule& rule : obs::DefaultWatchdogRules(config_.metrics.scrape_interval)) {
      scraper_->AddRule(std::move(rule));
    }
    scraper_->set_eventlog(eventlog_.get());
    if (config_.num_tenants > 0 && config_.slo.enabled) {
      slo_engine_ = std::make_unique<obs::SloEngine>(*metrics_, config_.slo);
      slo_engine_->set_eventlog(eventlog_.get());
      scraper_->SetScrapeHook(
          [engine = slo_engine_.get()](SimTime now) { engine->OnScrape(now); });
    }
    if (eventlog_ && !config_.flight_dump_path.empty()) {
      // Black-box semantics: the first watchdog raise cuts a dump at the
      // moment things went wrong (teardown rewrites it with the full run).
      scraper_->SetAlertHook([this](const obs::Alert& alert) {
        if (alert.raise) {
          DumpFlightRecorder(config_.flight_dump_path, ("alert:" + alert.rule).c_str());
        }
      });
    }
  }

  NetworkParams net_params;
  net_params.link_gbit_per_s = config_.cal.link_gbit_per_s;
  net_params.switch_latency_us = config_.cal.switch_latency_us;
  net_params.loss_rate = config_.loss_rate;
  if (config_.chaos.enabled) {
    // Folds the chaos seed into the network's RNG seeding so scenarios can
    // vary their stochastic faults (loss draws, Gilbert chains) without
    // touching the workload seed. Chaos-off ensembles are bit-unchanged.
    net_params.loss_seed ^= MixU64(config_.chaos.seed);
  }
  network_ = std::make_unique<Network>(queue_, net_params);
  network_->set_tracer(tracer_.get());
  network_->set_metrics(metrics_.get());
  network_->set_eventlog(eventlog_.get());
  network_->set_profiler(profiler_.get());

  // --- storage nodes ---
  std::vector<Endpoint> storage_endpoints;
  for (size_t i = 0; i < config_.num_storage_nodes; ++i) {
    StorageNodeParams params;
    params.capacity_bytes = config_.storage_capacity_bytes;
    params.cache_bytes = static_cast<uint64_t>(config_.cal.storage_cache_mb * (1 << 20));
    params.num_disks = config_.cal.disks_per_node;
    params.disk = config_.cal.disk;
    params.channel_mb_per_s = config_.cal.channel_mb_per_s;
    params.op_cpu_us = config_.cal.storage_op_cpu_us;
    params.cpu_ns_per_byte = config_.cal.storage_cpu_ns_per_byte;
    params.volume_secret = config_.volume_secret;
    params.extra_meta_ios = config_.storage_extra_meta_ios;
    storage_nodes_.push_back(std::make_unique<StorageNode>(
        *network_, queue_, kStorageBase + static_cast<NetAddr>(i), params, /*seed=*/i + 1));
    storage_endpoints.push_back(storage_nodes_.back()->endpoint());
  }

  // --- small-file servers ---
  std::vector<Endpoint> sfs_endpoints;
  for (size_t i = 0; i < config_.num_small_file_servers; ++i) {
    SmallFileServerParams params;
    params.cache_bytes = static_cast<uint64_t>(config_.cal.sfs_cache_mb * (1 << 20));
    params.op_cpu_us = config_.cal.sfs_op_cpu_us;
    params.cpu_ns_per_byte = config_.cal.sfs_cpu_ns_per_byte;
    params.threshold = config_.threshold;
    params.volume_secret = config_.volume_secret;
    params.server_index = static_cast<uint32_t>(i);
    params.backing_node = storage_endpoints[(i + 2) % storage_endpoints.size()];
    params.backing_object =
        BackingObject(0xfd, static_cast<uint32_t>(i), 1, config_.volume_secret);
    small_file_servers_.push_back(std::make_unique<SmallFileServer>(
        *network_, queue_, kSfsBase + static_cast<NetAddr>(i), params, storage_endpoints));
    sfs_endpoints.push_back(small_file_servers_.back()->endpoint());
  }

  // --- coordinators ---
  std::vector<Endpoint> coord_endpoints;
  for (size_t i = 0; i < config_.num_coordinators; ++i) {
    CoordinatorParams params;
    params.volume_secret = config_.volume_secret;
    params.num_storage_sites = static_cast<uint32_t>(config_.num_storage_nodes);
    params.backing_node = storage_endpoints[(i + 1) % storage_endpoints.size()];
    params.backing_object =
        BackingObject(0xfc, static_cast<uint32_t>(i), 1, config_.volume_secret);
    coordinators_.push_back(std::make_unique<Coordinator>(
        *network_, queue_, kCoordBase + static_cast<NetAddr>(i), params, storage_endpoints,
        sfs_endpoints));
    coord_endpoints.push_back(coordinators_.back()->endpoint());
  }

  // --- directory servers ---
  std::vector<Endpoint> dir_endpoints;
  std::vector<DirServer*> dir_peers;
  for (size_t i = 0; i < config_.num_dir_servers; ++i) {
    DirServerParams params;
    params.site = static_cast<uint32_t>(i);
    params.num_sites = static_cast<uint32_t>(config_.num_dir_servers);
    params.volume_secret = config_.volume_secret;
    params.policy = config_.name_policy;
    params.default_replication = config_.default_replication;
    params.op_cpu_us = config_.cal.dir_op_cpu_us;
    params.peer_cpu_us = config_.cal.dir_peer_cpu_us;
    params.peer_rtt_us = config_.cal.dir_peer_rtt_us;
    params.slot_metrics = config_.dir_slot_metrics;
    if (config_.dir_wal_enabled) {
      params.backing_node = storage_endpoints[i % storage_endpoints.size()];
      params.backing_object =
          BackingObject(0xff, static_cast<uint32_t>(i), 1, config_.volume_secret);
    }
    dir_servers_.push_back(std::make_unique<DirServer>(
        *network_, queue_, kDirBase + static_cast<NetAddr>(i), params));
    dir_endpoints.push_back(dir_servers_.back()->endpoint());
    dir_peers.push_back(dir_servers_.back().get());
  }
  for (auto& server : dir_servers_) {
    server->SetPeers(dir_peers);
  }
  storage_endpoints_ = storage_endpoints;

  // --- ensemble manager and heartbeat agents ---
  if (config_.mgmt.enabled) {
    ClusterView view;
    view.dir_servers = dir_endpoints;
    view.small_file_servers = sfs_endpoints;
    view.storage_nodes = storage_endpoints;
    view.coordinators = coord_endpoints;
    view.logical_slots = kDefaultLogicalSlots;
    manager_ = std::make_unique<EnsembleManager>(*network_, queue_, kMgmtAddr,
                                                 std::move(view), config_.mgmt);
    manager_->SetReconfigureHook(
        [this](const MgmtTableSet& tables, const std::vector<uint64_t>& died,
               const std::vector<uint64_t>& revived) { OnReconfigure(tables, died, revived); });
    manager_->SetRebalanceHook(
        [this](uint32_t slot, uint32_t num_slots, uint32_t from, uint32_t to) {
          if (from >= dir_servers_.size() || to >= dir_servers_.size()) {
            return;
          }
          DirServer* src = dir_servers_[from].get();
          DirServer* dst = dir_servers_[to].get();
          if (src->failed() || dst->failed()) {
            return;
          }
          src->MigrateSlot(slot, num_slots, *dst);
        });
    auto add_agent = [&](Host& host, NodeClass cls, uint32_t index) {
      HeartbeatAgentParams hb;
      hb.node_class = cls;
      hb.index = index;
      hb.manager = manager_->endpoint();
      hb.interval = config_.mgmt.heartbeat_interval;
      heartbeat_agents_.push_back(std::make_unique<HeartbeatAgent>(host, queue_, hb));
    };
    for (size_t i = 0; i < storage_nodes_.size(); ++i) {
      add_agent(storage_nodes_[i]->host(), NodeClass::kStorage, static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < small_file_servers_.size(); ++i) {
      add_agent(small_file_servers_[i]->host(), NodeClass::kSfs, static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < coordinators_.size(); ++i) {
      add_agent(coordinators_[i]->host(), NodeClass::kCoord, static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < dir_servers_.size(); ++i) {
      add_agent(dir_servers_[i]->host(), NodeClass::kDir, static_cast<uint32_t>(i));
    }
    manager_->Start();
    for (auto& agent : heartbeat_agents_) {
      agent->Start();
    }
  }

  // --- clients with interposed µproxies ---
  for (size_t i = 0; i < config_.num_clients; ++i) {
    client_hosts_.push_back(
        std::make_unique<Host>(*network_, kClientBase + static_cast<NetAddr>(i)));
    UproxyConfig up;
    up.virtual_server = virtual_server_;
    up.dir_servers = dir_endpoints;
    up.small_file_servers = sfs_endpoints;
    up.storage_nodes = storage_endpoints;
    up.coordinators = coord_endpoints;
    up.name_policy = config_.name_policy;
    up.mkdir_redirect_probability = config_.mkdir_redirect_probability;
    up.threshold = config_.threshold;
    up.stripe_unit = config_.stripe_unit;
    up.use_block_maps = config_.use_block_maps;
    up.per_packet_cpu_us = config_.cal.uproxy_cpu_us;
    up.rendezvous_routing = config_.rendezvous_routing;
    up.proxy_cache = config_.proxy_cache;
    up.lookup_cache_entries = config_.lookup_cache_entries;
    up.proxy_cache_ttl = config_.proxy_cache_ttl;
    if (manager_) {
      up.mgmt_enabled = true;
      up.manager = manager_->endpoint();
      // Fan-outs to a just-died node must fail well inside the client's own
      // retransmission budget so the degraded path kicks in promptly.
      up.own_rpc_params.retransmit_timeout = FromMillis(150);
      up.own_rpc_params.max_transmissions = 3;
    }
    uproxies_.push_back(
        std::make_unique<Uproxy>(*network_, queue_, *client_hosts_.back(), up));
    if (manager_) {
      manager_->Subscribe(Endpoint{client_hosts_.back()->addr(), kMgmtClientPort});
    }
  }

  if (tracer_) {
    for (auto& node : storage_nodes_) {
      node->set_tracer(tracer_.get());
    }
    for (auto& server : small_file_servers_) {
      server->set_tracer(tracer_.get());
    }
    for (auto& coord : coordinators_) {
      coord->set_tracer(tracer_.get());
    }
    for (auto& server : dir_servers_) {
      server->set_tracer(tracer_.get());
    }
    if (manager_) {
      // The manager mints failure-episode traces (hb_miss / node_dead /
      // node_rejoin instants) so eventlog records resolve in the trace
      // export.
      manager_->set_tracer(tracer_.get());
    }
    for (auto& proxy : uproxies_) {
      proxy->set_tracer(tracer_.get());
    }
  }

  if (eventlog_) {
    for (auto& node : storage_nodes_) {
      node->set_eventlog(eventlog_.get());
    }
    for (auto& server : small_file_servers_) {
      server->set_eventlog(eventlog_.get());
    }
    for (auto& coord : coordinators_) {
      coord->set_eventlog(eventlog_.get());
    }
    for (auto& server : dir_servers_) {
      server->set_eventlog(eventlog_.get());
    }
    if (manager_) {
      manager_->set_eventlog(eventlog_.get());
    }
    for (auto& proxy : uproxies_) {
      proxy->set_eventlog(eventlog_.get());
    }
  }

  if (metrics_) {
    for (auto& node : storage_nodes_) {
      node->set_metrics(metrics_.get());
    }
    for (auto& server : small_file_servers_) {
      server->set_metrics(metrics_.get());
    }
    for (auto& coord : coordinators_) {
      coord->set_metrics(metrics_.get());
    }
    for (auto& server : dir_servers_) {
      server->set_metrics(metrics_.get());
    }
    if (manager_) {
      manager_->set_metrics(metrics_.get());
    }
    for (auto& agent : heartbeat_agents_) {
      agent->RegisterMetrics(metrics_.get());
    }
    for (auto& proxy : uproxies_) {
      proxy->set_metrics(metrics_.get());
    }
    scraper_->Start();
  }

  if (profiler_) {
    for (auto& node : storage_nodes_) {
      node->set_profiler(profiler_.get());
    }
    for (auto& server : small_file_servers_) {
      server->set_profiler(profiler_.get());
    }
    for (auto& coord : coordinators_) {
      coord->set_profiler(profiler_.get());
    }
    for (auto& server : dir_servers_) {
      server->set_profiler(profiler_.get());
    }
    if (manager_) {
      manager_->set_profiler(profiler_.get());
    }
    for (auto& proxy : uproxies_) {
      proxy->set_profiler(profiler_.get());
    }

    // Coverage reference: per-host *independent* busy-time totals from the
    // BusyResource accounting — NIC tx+rx on every host, server/proxy CPU,
    // and the storage arms + channel. The ledger must attribute >= 99% of
    // this in profiled runs.
    profiler_->SetBusyProvider([this](std::map<uint32_t, uint64_t>* out) {
      network_->CollectNicBusy(out);
      for (const auto& node : storage_nodes_) {
        (*out)[node->addr()] += static_cast<uint64_t>(node->cpu().total_busy_time()) +
                                static_cast<uint64_t>(node->disks().TotalBusy()) +
                                static_cast<uint64_t>(node->disks().channel().total_busy_time());
      }
      for (const auto& server : small_file_servers_) {
        (*out)[server->addr()] += static_cast<uint64_t>(server->cpu().total_busy_time());
      }
      for (const auto& coord : coordinators_) {
        (*out)[coord->addr()] += static_cast<uint64_t>(coord->cpu().total_busy_time());
      }
      for (const auto& server : dir_servers_) {
        (*out)[server->addr()] += static_cast<uint64_t>(server->cpu().total_busy_time());
      }
      if (manager_) {
        (*out)[manager_->addr()] += static_cast<uint64_t>(manager_->cpu().total_busy_time());
      }
      for (size_t i = 0; i < uproxies_.size(); ++i) {
        (*out)[client_hosts_[i]->addr()] +=
            static_cast<uint64_t>(uproxies_[i]->cpu().total_busy_time());
      }
    });

    if (metrics_) {
      // Ledger categories as provider-backed counters in every host's
      // registry, so the scraper samples utilization attribution into the
      // same time-series rings as every other instrument.
      auto add_ledger_counters = [this](uint32_t addr) {
        uint64_t* ledger = profiler_->LedgerFor(addr);
        obs::MetricsRegistry& reg = metrics_->Registry(addr);
        static constexpr const char* kNames[obs::kNumLedgerCats] = {
            "profile_cpu_ns", "profile_queue_ns", "profile_disk_ns", "profile_wire_ns"};
        for (size_t cat = 0; cat < obs::kNumLedgerCats; ++cat) {
          reg.GetCounter(kNames[cat])->SetProvider([ledger, cat] { return ledger[cat]; });
        }
      };
      for (const auto& node : storage_nodes_) {
        add_ledger_counters(node->addr());
      }
      for (const auto& server : small_file_servers_) {
        add_ledger_counters(server->addr());
      }
      for (const auto& coord : coordinators_) {
        add_ledger_counters(coord->addr());
      }
      for (const auto& server : dir_servers_) {
        add_ledger_counters(server->addr());
      }
      if (manager_) {
        add_ledger_counters(manager_->addr());
      }
      for (const auto& host : client_hosts_) {
        add_ledger_counters(host->addr());
      }
    }
  }

  // --- chaos engine (src/chaos) ---
  if (config_.chaos.enabled) {
    chaos::ChaosHooks hooks;
    hooks.queue = &queue_;
    hooks.net = network_.get();
    hooks.log = eventlog_.get();
    hooks.fail_node = [this](NodeClass cls, uint32_t index) {
      if (RpcServerNode* n = node(cls, index)) {
        n->Fail();
      }
    };
    hooks.restart_node = [this](NodeClass cls, uint32_t index) {
      if (RpcServerNode* n = node(cls, index)) {
        n->Restart();
      }
    };
    hooks.set_storage_disk_multiplier = [this](uint32_t index, double multiplier) {
      if (index < storage_nodes_.size()) {
        storage_nodes_[index]->SetDiskLatencyMultiplier(multiplier);
      }
    };
    hooks.set_heartbeat_scale = [this](NodeClass cls, uint32_t index, double scale) {
      for (auto& agent : heartbeat_agents_) {
        if (agent->node_class() == cls && agent->index() == index) {
          agent->set_interval_scale(scale);
        }
      }
    };
    hooks.addr_of = [this](NodeClass cls, uint32_t index) -> uint32_t {
      if (cls == NodeClass::kClient) {
        return index < client_hosts_.size() ? client_hosts_[index]->addr() : 0;
      }
      RpcServerNode* n = node(cls, index);
      return n != nullptr ? n->addr() : 0;
    };
    // The "rest of the world" a partition severs a target from: every
    // server, the manager, and every client host.
    for (auto& n : storage_nodes_) {
      hooks.all_hosts.push_back(n->addr());
    }
    for (auto& s : small_file_servers_) {
      hooks.all_hosts.push_back(s->addr());
    }
    for (auto& c : coordinators_) {
      hooks.all_hosts.push_back(c->addr());
    }
    for (auto& d : dir_servers_) {
      hooks.all_hosts.push_back(d->addr());
    }
    if (manager_) {
      hooks.all_hosts.push_back(manager_->addr());
    }
    for (auto& h : client_hosts_) {
      hooks.all_hosts.push_back(h->addr());
    }
    chaos_engine_ = std::make_unique<chaos::ChaosEngine>(std::move(hooks), config_.chaos);
    chaos_engine_->Arm();
  }
}

RpcServerNode* Ensemble::node(NodeClass cls, uint32_t index) {
  switch (cls) {
    case NodeClass::kStorage:
      return index < storage_nodes_.size() ? storage_nodes_[index].get() : nullptr;
    case NodeClass::kDir:
      return index < dir_servers_.size() ? dir_servers_[index].get() : nullptr;
    case NodeClass::kSfs:
      return index < small_file_servers_.size() ? small_file_servers_[index].get() : nullptr;
    case NodeClass::kCoord:
      return index < coordinators_.size() ? coordinators_[index].get() : nullptr;
    case NodeClass::kClient:
      return nullptr;  // client hosts are not RPC servers
  }
  return nullptr;
}

Ensemble::~Ensemble() {
  if (eventlog_ && !config_.flight_dump_path.empty()) {
    DumpFlightRecorder(config_.flight_dump_path, "teardown");
  }
  if (profiler_) {
    // The queue outlives the ensemble; detach before the profiler dies.
    queue_.SetDispatchHook(nullptr, nullptr);
  }
  *alive_ = false;
}

void Ensemble::OnReconfigure(const MgmtTableSet& tables, const std::vector<uint64_t>& died,
                             const std::vector<uint64_t>& revived) {
  // Install the epoch-stamped view on every directory server so misrouted
  // requests draw jukebox + misdirect notices (lazy table distribution).
  for (size_t i = 0; i < dir_servers_.size(); ++i) {
    dir_servers_[i]->SetMgmtView(tables.epoch, static_cast<uint32_t>(i), tables.dir_slots);
  }
  // Remap the peer-protocol targets: peers[site] is the server the manager
  // bound that site to (its adopter while the owner is dead).
  if (!tables.dir_slots.empty()) {
    std::vector<DirServer*> peers(dir_servers_.size());
    for (size_t site = 0; site < peers.size(); ++site) {
      peers[site] = dir_servers_[tables.dir_slots[site % tables.dir_slots.size()]].get();
    }
    for (auto& server : dir_servers_) {
      server->SetPeers(peers);
    }
  }

  for (uint64_t id : died) {
    if (NodeIdClass(id) != NodeClass::kDir) {
      continue;  // sfs/storage death is handled by µproxy liveness bits
    }
    const uint32_t site = NodeIdIndex(id);
    if (site >= dir_servers_.size() || tables.dir_slots.empty() || !config_.dir_wal_enabled) {
      continue;
    }
    DirServer* adopter = dir_servers_[tables.dir_slots[site]].get();
    if (adopter == dir_servers_[site].get() || adopter->failed()) {
      continue;  // no live replacement — the site stays down until rejoin
    }
    // Stamp the adoption with the failure episode the manager opened at the
    // first heartbeat miss, completing the hb_miss -> node_dead -> adopt
    // causal chain under one trace id.
    const obs::TraceContext episode = manager_->EpisodeContext(id);
    if (tracer_ && episode.valid()) {
      tracer_->RecordInstant(adopter->addr(), episode, "adopt_site", queue_.now());
    }
    obs::LogEvent(eventlog_.get(), adopter->addr(), queue_.now(), obs::EventSev::kWarn,
                  obs::EventCat::kFailover, obs::EventCode::kAdoptBegin, episode.trace_id,
                  nullptr, {{"site", site}, {"epoch", static_cast<int64_t>(tables.epoch)}});
    adopter->AdoptSite(site, storage_endpoints_[site % storage_endpoints_.size()],
                       BackingObject(0xff, site, 1, config_.volume_secret));
  }

  for (uint64_t id : revived) {
    switch (NodeIdClass(id)) {
      case NodeClass::kDir: {
        const uint32_t site = NodeIdIndex(id);
        if (site >= dir_servers_.size()) {
          break;
        }
        DirServer* target = dir_servers_[site].get();
        for (auto& server : dir_servers_) {
          if (server->adopted_sites().count(site) != 0) {
            const obs::TraceContext episode = manager_->EpisodeContext(id);
            if (tracer_ && episode.valid()) {
              tracer_->RecordInstant(server->addr(), episode, "handoff_site", queue_.now());
            }
            obs::LogEvent(eventlog_.get(), server->addr(), queue_.now(), obs::EventSev::kInfo,
                          obs::EventCat::kFailover, obs::EventCode::kHandoff, episode.trace_id,
                          "scheduled", {{"site", site}, {"to", target->addr()}});
            target->BeginHandoffHold();
            ScheduleHandoff(server.get(), site, target);
            break;
          }
        }
        break;
      }
      case NodeClass::kStorage: {
        // Resync the rejoined mirror: replay the degraded regions logged by
        // µproxies while it was down.
        const uint32_t node = NodeIdIndex(id);
        const obs::TraceContext episode = manager_->EpisodeContext(id);
        for (auto& coord : coordinators_) {
          if (tracer_ && episode.valid()) {
            tracer_->RecordInstant(coord->addr(), episode, "mirror_resync", queue_.now());
          }
          obs::LogEvent(eventlog_.get(), coord->addr(), queue_.now(), obs::EventSev::kInfo,
                        obs::EventCat::kFailover, obs::EventCode::kResync, episode.trace_id,
                        nullptr, {{"node", node}});
          coord->RepairNode(node);
        }
        break;
      }
      default:
        break;  // sfs/coordinators recover from their own WALs on restart
    }
  }
}

void Ensemble::ScheduleHandoff(DirServer* adopter, uint32_t site, DirServer* target) {
  queue_.ScheduleBackgroundAfter(FromMillis(1), [this, alive = alive_, adopter, site, target] {
    if (!*alive) {
      return;
    }
    if (adopter->failed() || target->failed()) {
      target->EndHandoffHold();  // abandoned; a later reconfiguration retries
      return;
    }
    if (target->recovering() || adopter->adopting()) {
      ScheduleHandoff(adopter, site, target);
      return;
    }
    adopter->HandoffSite(site, *target);
    target->EndHandoffHold();
  });
}

std::unique_ptr<SyncNfsClient> Ensemble::MakeSyncClient(size_t i) {
  return std::make_unique<SyncNfsClient>(client_host(i), queue_, virtual_server_);
}

std::unique_ptr<NfsClient> Ensemble::MakeAsyncClient(size_t i) {
  return std::make_unique<NfsClient>(client_host(i), queue_, virtual_server_);
}

std::vector<obs::Span> Ensemble::CollectSpans() const {
  if (!tracer_) {
    return {};
  }
  return obs::CanonicalOrder(tracer_->Collect());
}

std::string Ensemble::ExportTraceJson() const {
  return obs::ExportChromeTrace(CollectSpans());
}

uint64_t Ensemble::TraceHash() const { return obs::TraceContentHash(CollectSpans()); }

std::string Ensemble::ExportMetricsJson() const {
  if (!metrics_) {
    return {};
  }
  return obs::ExportMetricsJson(*metrics_, scraper_.get(), slo_engine_.get());
}

uint64_t Ensemble::MetricsHash() const {
  if (!metrics_) {
    return 0;
  }
  return obs::MetricsContentHash(ExportMetricsJson());
}

std::string Ensemble::ExportMetricsText() const {
  if (!metrics_) {
    return {};
  }
  return obs::ExportPrometheus(*metrics_);
}

std::vector<obs::Alert> Ensemble::alerts() const {
  if (!scraper_) {
    return {};
  }
  return scraper_->alerts();
}

std::vector<uint64_t> Ensemble::InflightTraceIds() const {
  std::vector<uint64_t> out;
  for (const auto& proxy : uproxies_) {
    proxy->CollectInflightTraceIds(out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Ensemble::ExportFlightJson(const char* reason) const {
  if (!eventlog_) {
    return {};
  }
  return obs::ExportFlightJson(*eventlog_, queue_.now(), reason, InflightTraceIds(),
                               metrics_.get(), scraper_.get(), slo_engine_.get(),
                               profiler_.get());
}

std::string Ensemble::ExportProfileJson() const {
  if (!profiler_) {
    return {};
  }
  return profiler_->ExportProfileJson();
}

std::string Ensemble::ExportProfileFolded() const {
  if (!profiler_) {
    return {};
  }
  return profiler_->ExportProfileFolded();
}

uint64_t Ensemble::ProfileSimHash() const {
  if (!profiler_) {
    return 0;
  }
  return profiler_->ProfileSimHash();
}

uint64_t Ensemble::FlightHash() const {
  if (!eventlog_) {
    return 0;
  }
  return obs::FlightContentHash(ExportFlightJson());
}

bool Ensemble::DumpFlightRecorder(const std::string& path, const char* reason) const {
  if (!eventlog_) {
    return false;
  }
  return obs::WriteFlightDump(path, ExportFlightJson(reason));
}

obs::CriticalPathReport Ensemble::AnalyzeCriticalPath() const {
  return obs::CriticalPath::Analyze(CollectSpans());
}

OpCounters Ensemble::AggregateCounters() const {
  OpCounters total;
  for (const auto& proxy : uproxies_) {
    for (const auto& [name, value] : proxy->counters().entries()) {
      total.Add(name, value);
    }
  }
  return total;
}

}  // namespace slice
