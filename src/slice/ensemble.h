// Ensemble assembly: constructs a complete Slice deployment on the simulated
// network — storage nodes, coordinators, directory servers, small-file
// servers, client hosts each with an interposed µproxy — and presents the
// whole thing as a single virtual NFS server (paper §2: "To a client, the
// ensemble appears as a single file server at some virtual network
// address").
//
// This is the top-level public API a downstream user builds against.
#ifndef SLICE_SLICE_ENSEMBLE_H_
#define SLICE_SLICE_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/chaos/chaos_engine.h"
#include "src/coord/coordinator.h"
#include "src/core/uproxy.h"
#include "src/dir/dir_server.h"
#include "src/mgmt/heartbeat.h"
#include "src/mgmt/manager.h"
#include "src/nfs/nfs_client.h"
#include "src/obs/critical_path.h"
#include "src/obs/eventlog.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_export.h"
#include "src/obs/profiler.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/sfs/small_file_server.h"
#include "src/slice/calibration.h"
#include "src/storage/storage_node.h"

namespace slice {

struct EnsembleConfig {
  size_t num_dir_servers = 1;
  size_t num_small_file_servers = 2;  // 0 = all I/O goes to storage nodes
  size_t num_storage_nodes = 4;
  size_t num_coordinators = 1;        // 0 = no intention logging / block maps
  size_t num_clients = 1;

  NamePolicy name_policy = NamePolicy::kMkdirSwitching;
  double mkdir_redirect_probability = 0.25;
  uint8_t default_replication = 1;  // 2+ = mirrored striping for new files
  bool use_block_maps = false;
  uint32_t threshold = 65536;
  uint32_t stripe_unit = 32768;
  uint64_t volume_secret = 0x51ce2000;
  double loss_rate = 0.0;
  bool dir_wal_enabled = true;

  // Fleet routing by rendezvous (HRW) hashing in every µproxy: storage
  // striping and locally-built small-file tables pick sites by highest
  // random weight, so membership changes move the minimal key set.
  bool rendezvous_routing = false;

  // In-proxy metadata cache: each µproxy answers repeated LOOKUPs (and
  // GETATTRs with complete cached attributes) from a bounded LRU, with
  // epoch-based invalidation riding the mgmt table push. Off by default —
  // the cache changes observable RPC flows, so benches opt in explicitly.
  bool proxy_cache = false;
  size_t lookup_cache_entries = 4096;
  SimTime proxy_cache_ttl = 0;  // 0 = entries live until invalidated

  Calibration cal;
  uint64_t storage_capacity_bytes = 64ull << 30;
  // FFS metadata amplification at the storage nodes (see StorageNodeParams).
  double storage_extra_meta_ios = 0.0;

  // Ensemble control plane (src/mgmt): heartbeat failure detection,
  // epoch-stamped routing tables, automated failover/rebalance. On by
  // default; benches that model a static healthy ensemble turn it off to
  // keep heartbeat traffic out of their measurements.
  MgmtParams mgmt;

  // End-to-end request tracing (src/obs). Off by default: with
  // trace.enabled false no Tracer is constructed and every instrumentation
  // site reduces to a null-pointer check.
  obs::TracerParams trace{.enabled = false};

  // Ensemble-wide metrics plane (src/obs): typed instruments on every host,
  // a sim-time scraper sampling them into time series, and the stock
  // saturation watchdogs. Off by default for the same reason as tracing —
  // disabled means no hub is constructed, components keep null instrument
  // pointers, and hot paths pay one branch.
  obs::MetricsParams metrics{.enabled = false};

  // Tenant/QoS plane (src/obs): with num_tenants > 0 and metrics enabled,
  // the hub preallocates per-tenant × per-opclass instruments, workload
  // clients stamp their tenant id into every request's AUTH_SYS credential,
  // and each µproxy accounts end-to-end latency with tail exemplars. 0 (the
  // default) keeps every untenanted export byte-identical to older builds.
  uint32_t num_tenants = 0;
  // Per-tenant SLO objectives evaluated on the scraper cadence (multi-window
  // burn-rate alerting); requires num_tenants > 0 and slo.enabled.
  obs::SloParams slo;
  // Per-slot dir op providers (+ slot×tenant joints): the demand signal for
  // the per-slot hotspot mode (mgmt.hotspot_per_slot) and the tenant report.
  bool dir_slot_metrics = false;

  // Profiler (src/obs): the cost pillar. Per-host sim-time utilization
  // ledgers (cpu / queue / disk / wire, scraped into the metrics time
  // series) plus wall-clock per-stage scope timings on the real fast path.
  // Off by default like the other pillars: disabled means no Profiler is
  // constructed, components keep null ledger pointers, and every charge or
  // scope site costs one branch.
  obs::ProfilerParams profiler;

  // Structured event log + flight recorder (src/obs): per-host rings of
  // routing / failover / retransmit decision records, dumped as canonical
  // JSON. Off by default like the other pillars: disabled means no EventLog
  // is constructed and every LogEvent site is a null-pointer check.
  obs::EventLogParams eventlog{.enabled = false};
  // When non-empty (and the event log is on), the flight recorder dump is
  // written here automatically — on the first watchdog alert raise and again
  // at ensemble teardown (the later dump supersedes the earlier one).
  std::string flight_dump_path;

  // Deterministic chaos plan (src/chaos): when enabled, a ChaosEngine is
  // constructed with hooks into this ensemble's network, nodes, disks and
  // heartbeat agents, and every FaultSpec is armed as a background DES
  // event. Off by default — disabled means no engine exists and no layer
  // pays anything.
  chaos::ChaosConfig chaos;
};

class Ensemble {
 public:
  Ensemble(EventQueue& queue, EnsembleConfig config);
  ~Ensemble();

  Ensemble(const Ensemble&) = delete;
  Ensemble& operator=(const Ensemble&) = delete;

  // The virtual NFS service address clients mount.
  Endpoint virtual_server() const { return virtual_server_; }
  FileHandle root() const { return dir_servers_[0]->RootHandle(); }
  uint64_t volume_secret() const { return config_.volume_secret; }

  Network& network() { return *network_; }
  EventQueue& queue() { return queue_; }
  const EnsembleConfig& config() const { return config_; }

  size_t num_clients() const { return client_hosts_.size(); }
  Host& client_host(size_t i) { return *client_hosts_.at(i); }
  Uproxy& uproxy(size_t i) { return *uproxies_.at(i); }

  DirServer& dir_server(size_t i) { return *dir_servers_.at(i); }
  size_t num_dir_servers() const { return dir_servers_.size(); }
  StorageNode& storage_node(size_t i) { return *storage_nodes_.at(i); }
  size_t num_storage_nodes() const { return storage_nodes_.size(); }
  SmallFileServer& small_file_server(size_t i) { return *small_file_servers_.at(i); }
  size_t num_small_file_servers() const { return small_file_servers_.size(); }
  Coordinator& coordinator(size_t i) { return *coordinators_.at(i); }
  size_t num_coordinators() const { return coordinators_.size(); }

  // Ensemble manager; null when config.mgmt.enabled is false.
  EnsembleManager* manager() { return manager_.get(); }

  // Chaos engine; null when config.chaos.enabled is false.
  chaos::ChaosEngine* chaos_engine() { return chaos_engine_.get(); }
  // The node in ensemble coordinates, or null when out of range.
  RpcServerNode* node(NodeClass cls, uint32_t index);

  // Metrics hub / scraper; null when config.metrics.enabled is false.
  obs::Metrics* metrics() { return metrics_.get(); }
  obs::Scraper* scraper() { return scraper_.get(); }
  // SLO engine; null unless metrics, num_tenants > 0, and slo.enabled.
  obs::SloEngine* slo_engine() { return slo_engine_.get(); }
  // Canonical JSON snapshot (instruments + series + alerts) and its FNV-1a
  // content hash; empty/0 when metrics are off.
  std::string ExportMetricsJson() const;
  uint64_t MetricsHash() const;
  // Prometheus text exposition; empty when metrics are off.
  std::string ExportMetricsText() const;
  // Watchdog raise/clear edges so far (empty when metrics are off).
  std::vector<obs::Alert> alerts() const;

  // Event log; null when config.eventlog.enabled is false.
  obs::EventLog* eventlog() { return eventlog_.get(); }
  // Canonical flight-recorder dump (merged events + metrics snapshot +
  // in-flight trace ids) and its FNV-1a content hash; empty/0 when the
  // event log is off.
  std::string ExportFlightJson(const char* reason = "manual") const;
  uint64_t FlightHash() const;
  // Writes the dump to `path`; returns false when the event log is off or
  // the write failed.
  bool DumpFlightRecorder(const std::string& path, const char* reason = "manual") const;
  // Trace ids of requests still pending at any µproxy, sorted and deduped.
  std::vector<uint64_t> InflightTraceIds() const;

  // Profiler; null when config.profiler.enabled is false.
  obs::Profiler* profiler() { return profiler_.get(); }
  const obs::Profiler* profiler() const { return profiler_.get(); }
  // Canonical {"profile":{"sim":...,"wall":...}} JSON; empty when off.
  std::string ExportProfileJson() const;
  // Collapsed-stack wall-clock rendering (FlameGraph input); empty when off.
  std::string ExportProfileFolded() const;
  // FNV-1a over the sim-time ledger section only (wall values are
  // machine-dependent and stay out-of-hash); 0 when off.
  uint64_t ProfileSimHash() const;

  // Tracer; null when config.trace.enabled is false.
  obs::Tracer* tracer() { return tracer_.get(); }
  // Collected spans in canonical order (empty when tracing is off).
  std::vector<obs::Span> CollectSpans() const;
  // Chrome trace-event JSON / content hash over the collected spans.
  std::string ExportTraceJson() const;
  uint64_t TraceHash() const;
  // Critical-path latency accounting over the collected spans.
  obs::CriticalPathReport AnalyzeCriticalPath() const;

  // Convenience: a blocking NFS client mounted on client `i` through its
  // µproxy at the virtual server address.
  std::unique_ptr<SyncNfsClient> MakeSyncClient(size_t i);
  std::unique_ptr<NfsClient> MakeAsyncClient(size_t i);

  // Aggregate routing statistics across all µproxies.
  OpCounters AggregateCounters() const;

 private:
  // Failover orchestration, invoked by the manager on every epoch change:
  // installs dir-server views, remaps peers to adopters, replays dead sites'
  // WALs into adopters, hands state back on rejoin, resyncs mirrors.
  void OnReconfigure(const MgmtTableSet& tables, const std::vector<uint64_t>& died,
                     const std::vector<uint64_t>& revived);
  // Defers a handoff until the rejoined owner finishes WAL recovery and the
  // adopter finishes any in-flight adoption.
  void ScheduleHandoff(DirServer* adopter, uint32_t site, DirServer* target);

  EventQueue& queue_;
  EnsembleConfig config_;
  Endpoint virtual_server_;
  std::unique_ptr<obs::Tracer> tracer_;  // before network_: spans outlive taps
  // Like the tracer: events recorded during component teardown must land in
  // a still-live log, so the log outlives everything below.
  std::unique_ptr<obs::EventLog> eventlog_;
  // Before network_/components: they cache raw ledger pointers from
  // LedgerFor in set_profiler, so the profiler must be destroyed last.
  std::unique_ptr<obs::Profiler> profiler_;
  // Hub before network_/components: providers registered by components are
  // destroyed with their registries only after every pollster is gone. The
  // scraper's queued events are guarded by its own alive flag.
  std::unique_ptr<obs::Metrics> metrics_;
  std::unique_ptr<obs::Scraper> scraper_;
  // After the scraper: destroyed first, and the scrape hook only fires while
  // the queue runs, so the raw pointer the hook captures never dangles.
  std::unique_ptr<obs::SloEngine> slo_engine_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<std::unique_ptr<DirServer>> dir_servers_;
  std::vector<std::unique_ptr<SmallFileServer>> small_file_servers_;
  std::vector<std::unique_ptr<Host>> client_hosts_;
  std::vector<std::unique_ptr<Uproxy>> uproxies_;
  std::vector<Endpoint> storage_endpoints_;
  std::unique_ptr<EnsembleManager> manager_;
  std::vector<std::unique_ptr<HeartbeatAgent>> heartbeat_agents_;
  // Last member: destroyed first, so the engine's hooks never observe a
  // partially-torn-down ensemble (its own alive flag also guards the
  // scheduled fault events).
  std::unique_ptr<chaos::ChaosEngine> chaos_engine_;
  // Guards deferred-handoff callbacks against outliving the ensemble.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slice

#endif  // SLICE_SLICE_ENSEMBLE_H_
